file(REMOVE_RECURSE
  "CMakeFiles/stability_auto_test.dir/stability_auto_test.cpp.o"
  "CMakeFiles/stability_auto_test.dir/stability_auto_test.cpp.o.d"
  "stability_auto_test"
  "stability_auto_test.pdb"
  "stability_auto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_auto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
