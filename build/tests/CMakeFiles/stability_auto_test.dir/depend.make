# Empty dependencies file for stability_auto_test.
# This may be replaced when dependencies are built.
