
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/RtFlatCombiner.cpp" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtFlatCombiner.cpp.o" "gcc" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtFlatCombiner.cpp.o.d"
  "/root/repo/src/runtime/RtLockedStack.cpp" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtLockedStack.cpp.o" "gcc" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtLockedStack.cpp.o.d"
  "/root/repo/src/runtime/RtPairSnapshot.cpp" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtPairSnapshot.cpp.o" "gcc" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtPairSnapshot.cpp.o.d"
  "/root/repo/src/runtime/RtSpanTree.cpp" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtSpanTree.cpp.o" "gcc" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtSpanTree.cpp.o.d"
  "/root/repo/src/runtime/RtSpinLock.cpp" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtSpinLock.cpp.o" "gcc" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtSpinLock.cpp.o.d"
  "/root/repo/src/runtime/RtTicketLock.cpp" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtTicketLock.cpp.o" "gcc" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtTicketLock.cpp.o.d"
  "/root/repo/src/runtime/RtTreiberStack.cpp" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtTreiberStack.cpp.o" "gcc" "src/CMakeFiles/fcsl_runtime.dir/runtime/RtTreiberStack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fcsl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
