file(REMOVE_RECURSE
  "CMakeFiles/fcsl_runtime.dir/runtime/RtFlatCombiner.cpp.o"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtFlatCombiner.cpp.o.d"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtLockedStack.cpp.o"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtLockedStack.cpp.o.d"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtPairSnapshot.cpp.o"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtPairSnapshot.cpp.o.d"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtSpanTree.cpp.o"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtSpanTree.cpp.o.d"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtSpinLock.cpp.o"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtSpinLock.cpp.o.d"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtTicketLock.cpp.o"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtTicketLock.cpp.o.d"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtTreiberStack.cpp.o"
  "CMakeFiles/fcsl_runtime.dir/runtime/RtTreiberStack.cpp.o.d"
  "libfcsl_runtime.a"
  "libfcsl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcsl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
