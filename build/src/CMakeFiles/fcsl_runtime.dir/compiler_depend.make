# Empty compiler generated dependencies file for fcsl_runtime.
# This may be replaced when dependencies are built.
