file(REMOVE_RECURSE
  "libfcsl_runtime.a"
)
