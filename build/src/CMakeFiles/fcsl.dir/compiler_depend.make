# Empty compiler generated dependencies file for fcsl.
# This may be replaced when dependencies are built.
