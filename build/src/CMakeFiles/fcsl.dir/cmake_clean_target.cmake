file(REMOVE_RECURSE
  "libfcsl.a"
)
