
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/action/ActionChecks.cpp" "src/CMakeFiles/fcsl.dir/action/ActionChecks.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/action/ActionChecks.cpp.o.d"
  "/root/repo/src/action/AtomicAction.cpp" "src/CMakeFiles/fcsl.dir/action/AtomicAction.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/action/AtomicAction.cpp.o.d"
  "/root/repo/src/concurroid/Concurroid.cpp" "src/CMakeFiles/fcsl.dir/concurroid/Concurroid.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/concurroid/Concurroid.cpp.o.d"
  "/root/repo/src/concurroid/Entangle.cpp" "src/CMakeFiles/fcsl.dir/concurroid/Entangle.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/concurroid/Entangle.cpp.o.d"
  "/root/repo/src/concurroid/Metatheory.cpp" "src/CMakeFiles/fcsl.dir/concurroid/Metatheory.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/concurroid/Metatheory.cpp.o.d"
  "/root/repo/src/concurroid/Priv.cpp" "src/CMakeFiles/fcsl.dir/concurroid/Priv.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/concurroid/Priv.cpp.o.d"
  "/root/repo/src/concurroid/Registry.cpp" "src/CMakeFiles/fcsl.dir/concurroid/Registry.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/concurroid/Registry.cpp.o.d"
  "/root/repo/src/concurroid/Transition.cpp" "src/CMakeFiles/fcsl.dir/concurroid/Transition.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/concurroid/Transition.cpp.o.d"
  "/root/repo/src/graph/GraphGen.cpp" "src/CMakeFiles/fcsl.dir/graph/GraphGen.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/graph/GraphGen.cpp.o.d"
  "/root/repo/src/graph/GraphPredicates.cpp" "src/CMakeFiles/fcsl.dir/graph/GraphPredicates.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/graph/GraphPredicates.cpp.o.d"
  "/root/repo/src/graph/HeapGraph.cpp" "src/CMakeFiles/fcsl.dir/graph/HeapGraph.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/graph/HeapGraph.cpp.o.d"
  "/root/repo/src/heap/Heap.cpp" "src/CMakeFiles/fcsl.dir/heap/Heap.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/heap/Heap.cpp.o.d"
  "/root/repo/src/heap/Ptr.cpp" "src/CMakeFiles/fcsl.dir/heap/Ptr.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/heap/Ptr.cpp.o.d"
  "/root/repo/src/heap/Val.cpp" "src/CMakeFiles/fcsl.dir/heap/Val.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/heap/Val.cpp.o.d"
  "/root/repo/src/lincheck/History.cpp" "src/CMakeFiles/fcsl.dir/lincheck/History.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/lincheck/History.cpp.o.d"
  "/root/repo/src/lincheck/LinCheck.cpp" "src/CMakeFiles/fcsl.dir/lincheck/LinCheck.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/lincheck/LinCheck.cpp.o.d"
  "/root/repo/src/pcm/Histories.cpp" "src/CMakeFiles/fcsl.dir/pcm/Histories.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/pcm/Histories.cpp.o.d"
  "/root/repo/src/pcm/PCMType.cpp" "src/CMakeFiles/fcsl.dir/pcm/PCMType.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/pcm/PCMType.cpp.o.d"
  "/root/repo/src/pcm/PCMVal.cpp" "src/CMakeFiles/fcsl.dir/pcm/PCMVal.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/pcm/PCMVal.cpp.o.d"
  "/root/repo/src/prog/Engine.cpp" "src/CMakeFiles/fcsl.dir/prog/Engine.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/prog/Engine.cpp.o.d"
  "/root/repo/src/prog/Expr.cpp" "src/CMakeFiles/fcsl.dir/prog/Expr.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/prog/Expr.cpp.o.d"
  "/root/repo/src/prog/Prog.cpp" "src/CMakeFiles/fcsl.dir/prog/Prog.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/prog/Prog.cpp.o.d"
  "/root/repo/src/spec/Assertion.cpp" "src/CMakeFiles/fcsl.dir/spec/Assertion.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/spec/Assertion.cpp.o.d"
  "/root/repo/src/spec/Session.cpp" "src/CMakeFiles/fcsl.dir/spec/Session.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/spec/Session.cpp.o.d"
  "/root/repo/src/spec/Spec.cpp" "src/CMakeFiles/fcsl.dir/spec/Spec.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/spec/Spec.cpp.o.d"
  "/root/repo/src/spec/Stability.cpp" "src/CMakeFiles/fcsl.dir/spec/Stability.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/spec/Stability.cpp.o.d"
  "/root/repo/src/spec/Verifier.cpp" "src/CMakeFiles/fcsl.dir/spec/Verifier.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/spec/Verifier.cpp.o.d"
  "/root/repo/src/state/GlobalState.cpp" "src/CMakeFiles/fcsl.dir/state/GlobalState.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/state/GlobalState.cpp.o.d"
  "/root/repo/src/state/View.cpp" "src/CMakeFiles/fcsl.dir/state/View.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/state/View.cpp.o.d"
  "/root/repo/src/structures/CgAllocator.cpp" "src/CMakeFiles/fcsl.dir/structures/CgAllocator.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/CgAllocator.cpp.o.d"
  "/root/repo/src/structures/CgIncrement.cpp" "src/CMakeFiles/fcsl.dir/structures/CgIncrement.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/CgIncrement.cpp.o.d"
  "/root/repo/src/structures/FcStack.cpp" "src/CMakeFiles/fcsl.dir/structures/FcStack.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/FcStack.cpp.o.d"
  "/root/repo/src/structures/FlatCombiner.cpp" "src/CMakeFiles/fcsl.dir/structures/FlatCombiner.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/FlatCombiner.cpp.o.d"
  "/root/repo/src/structures/LockIface.cpp" "src/CMakeFiles/fcsl.dir/structures/LockIface.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/LockIface.cpp.o.d"
  "/root/repo/src/structures/PairSnapshot.cpp" "src/CMakeFiles/fcsl.dir/structures/PairSnapshot.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/PairSnapshot.cpp.o.d"
  "/root/repo/src/structures/ProdCons.cpp" "src/CMakeFiles/fcsl.dir/structures/ProdCons.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/ProdCons.cpp.o.d"
  "/root/repo/src/structures/SeqStack.cpp" "src/CMakeFiles/fcsl.dir/structures/SeqStack.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/SeqStack.cpp.o.d"
  "/root/repo/src/structures/SpanTree.cpp" "src/CMakeFiles/fcsl.dir/structures/SpanTree.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/SpanTree.cpp.o.d"
  "/root/repo/src/structures/SpinLock.cpp" "src/CMakeFiles/fcsl.dir/structures/SpinLock.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/SpinLock.cpp.o.d"
  "/root/repo/src/structures/StackIface.cpp" "src/CMakeFiles/fcsl.dir/structures/StackIface.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/StackIface.cpp.o.d"
  "/root/repo/src/structures/Suite.cpp" "src/CMakeFiles/fcsl.dir/structures/Suite.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/Suite.cpp.o.d"
  "/root/repo/src/structures/TicketLock.cpp" "src/CMakeFiles/fcsl.dir/structures/TicketLock.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/TicketLock.cpp.o.d"
  "/root/repo/src/structures/TreiberStack.cpp" "src/CMakeFiles/fcsl.dir/structures/TreiberStack.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/structures/TreiberStack.cpp.o.d"
  "/root/repo/src/support/Dot.cpp" "src/CMakeFiles/fcsl.dir/support/Dot.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/support/Dot.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "src/CMakeFiles/fcsl.dir/support/Format.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/support/Format.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/fcsl.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/support/Rng.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/CMakeFiles/fcsl.dir/support/Stats.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/support/Stats.cpp.o.d"
  "/root/repo/src/support/ThreadPool.cpp" "src/CMakeFiles/fcsl.dir/support/ThreadPool.cpp.o" "gcc" "src/CMakeFiles/fcsl.dir/support/ThreadPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
