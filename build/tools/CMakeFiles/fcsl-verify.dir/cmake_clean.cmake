file(REMOVE_RECURSE
  "CMakeFiles/fcsl-verify.dir/fcsl-verify.cpp.o"
  "CMakeFiles/fcsl-verify.dir/fcsl-verify.cpp.o.d"
  "fcsl-verify"
  "fcsl-verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcsl-verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
