# Empty compiler generated dependencies file for fcsl-verify.
# This may be replaced when dependencies are built.
