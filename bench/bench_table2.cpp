//===- bench/bench_table2.cpp - Regenerate Table 2 -------------------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Regenerates the paper's Table 2: which primitive concurroids each
// program employs, with `3L` marking concurroids reached through the
// abstract lock interface (and hence interchangeable between the CAS and
// ticketed locks). The matrix is computed from the live registry that the
// case-study modules populate — not hard-coded.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Registry.h"
#include "structures/Suite.h"

#include <cstdio>

using namespace fcsl;

int main() {
  registerAllLibraries();
  std::printf("Table 2: primitive concurroids employed by each program\n");
  std::printf("('3' = used directly; '3L' = through the abstract lock "
              "interface,\n");
  std::printf(" so the two lock concurroids are interchangeable)\n\n");
  std::printf("%s\n", globalRegistry().renderTable2().c_str());

  // Reuse statistic highlighted in the paper's Section 6.
  unsigned PrivUsers = 0, LockIfaceUsers = 0, Programs = 0;
  for (const LibraryInfo &Lib : globalRegistry().libraries()) {
    if (Lib.Uses.empty())
      continue;
    ++Programs;
    bool ViaIface = false;
    for (const ConcurroidUse &Use : Lib.Uses) {
      if (Use.Concurroid == "Priv")
        ++PrivUsers;
      ViaIface |= Use.ViaLockInterface;
    }
    LockIfaceUsers += ViaIface;
  }
  std::printf("reuse summary: %u/%u programs use Priv; %u/%u reach a lock "
              "through the abstract interface\n",
              PrivUsers, Programs, LockIfaceUsers, Programs);
  return 0;
}
