//===- bench/bench_flatcombining.cpp - FC vs locking vs lock-free ----------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Regenerates the empirical claim the paper imports from Hendler et al.
// (SPAA'10) to motivate the flat combiner: under contention, combining
// "reduces contention and improves cache locality" compared to having
// every thread fight for the lock. Compares stacks: coarse-grained
// (spinlock), lock-free (Treiber) and flat-combined, across thread
// counts. The shape to observe: FC tracks or beats the locked stack as
// threads grow; the fine-grained Treiber stack beats the coarse lock.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtFlatCombiner.h"
#include "runtime/RtLockedStack.h"
#include "runtime/RtTreiberStack.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace fcsl;

namespace {

constexpr int OpsPerThread = 2000;

template <typename SetupFn, typename OpFn>
void runThreads(benchmark::State &State, SetupFn Setup, OpFn Op) {
  for (auto _ : State) {
    State.PauseTiming();
    auto Structure = Setup();
    unsigned N = static_cast<unsigned>(State.range(0));
    State.ResumeTiming();
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < N; ++T)
      Threads.emplace_back([&, T] {
        for (int I = 0; I < OpsPerThread; ++I)
          Op(*Structure, T, I);
      });
    for (std::thread &T : Threads)
      T.join();
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          OpsPerThread);
}

void BM_LockedStack(benchmark::State &State) {
  runThreads(
      State, [] { return std::make_unique<RtLockedStack>(); },
      [](RtLockedStack &S, unsigned, int I) {
        if (I % 2 == 0)
          S.push(I);
        else
          benchmark::DoNotOptimize(S.pop());
      });
}

void BM_TreiberStack(benchmark::State &State) {
  runThreads(
      State, [] { return std::make_unique<RtTreiberStack>(); },
      [](RtTreiberStack &S, unsigned, int I) {
        if (I % 2 == 0)
          S.push(I);
        else
          benchmark::DoNotOptimize(S.pop());
      });
}

void BM_FcStack(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  runThreads(
      State, [N] { return std::make_unique<RtFcStack>(N); },
      [](RtFcStack &S, unsigned T, int I) {
        if (I % 2 == 0)
          S.push(T, I);
        else
          benchmark::DoNotOptimize(S.pop(T));
      });
}

} // namespace

BENCHMARK(BM_LockedStack)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_TreiberStack)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_FcStack)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
