//===- bench/bench_fig5.cpp - Regenerate Figure 5 --------------------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Regenerates Figure 5: the dependency diagram between the verified
// concurrent libraries, from the live registry (ASCII adjacency plus
// Graphviz DOT). Also validates the diagram: acyclic, and containing
// exactly the paper's edges.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Registry.h"
#include "structures/Suite.h"

#include <algorithm>
#include <cstdio>

using namespace fcsl;

int main() {
  registerAllLibraries();
  DotGraph G = globalRegistry().dependencyGraph();

  std::printf("Figure 5: dependencies between concurrent libraries\n");
  std::printf("(an edge X -> Y reads: X is used to build/verify Y)\n\n");
  std::printf("%s\n", G.renderAscii().c_str());
  std::printf("--- Graphviz DOT ---\n%s\n", G.render().c_str());

  // Validation against the paper's figure.
  const std::pair<const char *, const char *> Expected[] = {
      {"CAS-lock", "Abstract lock"},
      {"Ticketed lock", "Abstract lock"},
      {"Abstract lock", "CG increment"},
      {"Abstract lock", "CG allocator"},
      {"Abstract lock", "Flat combiner"},
      {"CG allocator", "Treiber stack"},
      {"Treiber stack", "Seq. stack"},
      {"Treiber stack", "Prod/Cons"},
      {"Flat combiner", "FC-stack"},
  };
  bool Ok = G.isAcyclic();
  for (const auto &E : Expected) {
    bool Found = false;
    for (const auto &Edge : G.edges())
      Found |= Edge.first == E.first && Edge.second == E.second;
    if (!Found) {
      std::printf("MISSING EDGE: %s -> %s\n", E.first, E.second);
      Ok = false;
    }
  }
  std::printf("diagram acyclic and matching the paper's edge set: %s\n",
              Ok ? "yes" : "NO");
  return Ok ? 0 : 1;
}
