//===- bench/bench_locks.cpp - CAS spinlock vs ticketed lock ---------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Compares the two verified lock implementations' executable
// counterparts: throughput of a protected counter across thread counts.
// The expected shape: comparable at low contention; the ticket lock
// enforces FIFO fairness and typically loses some raw throughput to the
// unfair TTAS spinlock as contention grows.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtSpinLock.h"
#include "runtime/RtTicketLock.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace fcsl;

namespace {

constexpr int OpsPerThread = 4000;

template <typename Lock> void lockThroughput(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    Lock L;
    int64_t Counter = 0;
    unsigned N = static_cast<unsigned>(State.range(0));
    State.ResumeTiming();
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < N; ++T)
      Threads.emplace_back([&] {
        for (int I = 0; I < OpsPerThread; ++I) {
          L.lock();
          ++Counter;
          L.unlock();
        }
      });
    for (std::thread &T : Threads)
      T.join();
    if (Counter != static_cast<int64_t>(N) * OpsPerThread)
      State.SkipWithError("mutual exclusion violated");
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          OpsPerThread);
}

void BM_SpinLockCounter(benchmark::State &State) {
  lockThroughput<RtSpinLock>(State);
}

void BM_TicketLockCounter(benchmark::State &State) {
  lockThroughput<RtTicketLock>(State);
}

} // namespace

BENCHMARK(BM_SpinLockCounter)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_TicketLockCounter)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
