//===- bench/bench_stack.cpp - Fine- vs coarse-grained stacks --------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Regenerates the paper's Section 1 motivation: "the fine-grained
// (lock-free) approach ... taking full advantage of parallel
// computations". Producer/consumer throughput over the Treiber stack vs
// the lock-protected baseline; the shape to observe is the Treiber
// stack's advantage growing with contention.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtLockedStack.h"
#include "runtime/RtTreiberStack.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace fcsl;

namespace {

constexpr int64_t ItemsPerProducer = 4000;

template <typename Stack> void prodConsThroughput(benchmark::State &State) {
  unsigned Pairs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    Stack S;
    std::atomic<int64_t> Received{0};
    int64_t Target = static_cast<int64_t>(Pairs) * ItemsPerProducer;
    State.ResumeTiming();

    std::vector<std::thread> Threads;
    for (unsigned P = 0; P < Pairs; ++P)
      Threads.emplace_back([&, P] {
        for (int64_t I = 0; I < ItemsPerProducer; ++I)
          S.push(static_cast<int64_t>(P) * ItemsPerProducer + I);
      });
    for (unsigned C = 0; C < Pairs; ++C)
      Threads.emplace_back([&] {
        while (Received.load(std::memory_order_relaxed) < Target)
          if (S.pop())
            Received.fetch_add(1, std::memory_order_relaxed);
      });
    for (std::thread &T : Threads)
      T.join();
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          ItemsPerProducer);
}

void BM_TreiberProdCons(benchmark::State &State) {
  prodConsThroughput<RtTreiberStack>(State);
}

void BM_LockedProdCons(benchmark::State &State) {
  prodConsThroughput<RtLockedStack>(State);
}

} // namespace

BENCHMARK(BM_TreiberProdCons)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_LockedProdCons)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
