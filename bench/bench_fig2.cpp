//===- bench/bench_fig2.cpp - Regenerate Figure 2 --------------------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Regenerates Figure 2: the six stages of concurrent spanning-tree
// construction on the five-node graph a-e. The exact schedule of the
// figure is replayed through the verified model's atomic actions (each
// stage printed), and then the engine exhaustively explores *all*
// schedules of the same graph, confirming that every one of them yields a
// maximal spanning tree — the property Figure 2 illustrates by example.
//
//===----------------------------------------------------------------------===//

#include "structures/SpanTree.h"
#include "support/Format.h"

#include <cstdio>

using namespace fcsl;

namespace {

constexpr Label Pv = 1;
constexpr Label Sp = 2;

/// Pretty-prints one stage: marks (with owners) and surviving edges.
void printStage(unsigned Stage, const char *Caption,
                const GlobalState &GS) {
  std::printf("stage (%u): %s\n", Stage, Caption);
  const Heap &G = GS.joint(Sp);
  std::string Marks;
  for (const auto &Cell : G) {
    if (!Cell.second.getNode().Marked)
      continue;
    std::string Owner = "?";
    for (ThreadId T : {ThreadId(1), ThreadId(4), ThreadId(5), ThreadId(6),
                       ThreadId(7)}) {
      // Identify the marking thread by its self set.
      // (Demo threads: 1 = main, 4/5 = b-side children, 6/7 = c-side.)
      if (GS.selfOf(Sp, T).getPtrSet().count(Cell.first))
        Owner = "t" + std::to_string(T);
    }
    Marks += figure2NodeName(Cell.first) + "(" + Owner + ") ";
  }
  std::string Edges;
  for (const auto &Cell : G) {
    const NodeCell &Node = Cell.second.getNode();
    if (!Node.Left.isNull())
      Edges += figure2NodeName(Cell.first) + "->" +
               figure2NodeName(Node.Left) + " ";
    if (!Node.Right.isNull())
      Edges += figure2NodeName(Cell.first) + "->" +
               figure2NodeName(Node.Right) + " ";
  }
  std::printf("    marked: %s\n    edges:  %s\n", Marks.c_str(),
              Edges.c_str());
}

/// Applies an action as thread \p T and returns its result.
Val runAs(GlobalState &GS, ThreadId T, const ActionRef &A,
          std::vector<Val> Args) {
  View Pre = GS.viewFor(T);
  auto Out = A->step(Pre, Args);
  if (!Out || Out->empty()) {
    std::printf("unexpected unsafe action in the scripted replay\n");
    std::exit(1);
  }
  GS.applyThread(T, Pre, (*Out)[0].Post);
  return (*Out)[0].Result;
}

} // namespace

int main() {
  std::printf("Figure 2: stages of concurrent spanning-tree construction\n");
  std::printf("=========================================================\n\n");

  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  GlobalState GS = spanOpenState(Case, figure2Graph(), {});
  Ptr A(1), B(2), C(3), E(5), D(4);

  // The schedule of the figure. Thread ids: 1 = main; 4,5 = children of
  // the b-side; 6,7 = children of the c-side.
  runAs(GS, 1, Case.TryMark, {Val::ofPtr(A)});
  printStage(1, "the main thread marks a and forks two children", GS);

  runAs(GS, 4, Case.TryMark, {Val::ofPtr(B)});
  runAs(GS, 6, Case.TryMark, {Val::ofPtr(C)});
  printStage(2, "the children succeed in marking b and c", GS);

  Val CWon = runAs(GS, 7, Case.TryMark, {Val::ofPtr(E)}); // c's child: ok
  Val BLost = runAs(GS, 5, Case.TryMark, {Val::ofPtr(E)}); // b's child: no
  std::printf("    (c-side thread marking e: %s; b-side thread: %s)\n",
              CWon.toString().c_str(), BLost.toString().c_str());
  printStage(3, "only one thread succeeds in marking e", GS);

  runAs(GS, 5, Case.TryMark, {Val::ofPtr(D)});
  printStage(4, "the processing of d and e is done", GS);

  runAs(GS, 4, Case.NullifyR, {Val::ofPtr(B)}); // Remove b -> e.
  runAs(GS, 6, Case.NullifyR, {Val::ofPtr(C)}); // Remove c -> c.
  printStage(5, "the redundant edges b->e and c->c are removed by the "
               "corresponding parent threads", GS);

  printStage(6, "the initial thread joins its children and terminates",
             GS);

  // Validate the figure's claim on ALL schedules, not just this one.
  std::printf("\nexhaustive validation: exploring every schedule of "
              "span_root on this graph...\n");
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(Main, spanRootState(Case, figure2Graph()), Opts);
  if (!R.complete()) {
    std::printf("FAILED: %s\n", R.FailureNote.c_str());
    return 1;
  }
  unsigned Spanning = 0;
  for (const Terminal &T : R.Terminals) {
    const Heap &G2 = T.FinalView.self(Pv).getHeap();
    PtrSet All;
    for (const auto &Cell : G2)
      All.insert(Cell.first);
    Spanning += isTreeIn(G2, Ptr(1), All);
  }
  std::printf("%llu configurations, %llu action steps, %zu distinct "
              "outcomes — all %u are spanning trees\n",
              static_cast<unsigned long long>(R.ConfigsExplored),
              static_cast<unsigned long long>(R.ActionSteps),
              R.Terminals.size(), Spanning);
  return Spanning == R.Terminals.size() ? 0 : 1;
}
