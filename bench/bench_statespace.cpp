//===- bench/bench_statespace.cpp - Exploration-cost ablation --------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// An ablation unique to the model-checking substitution: how the explored
// state space grows with instance size, how much the closed-world `hide`
// (no interference) saves over open-world verification — the quantitative
// counterpart of the paper's point that hiding removes the need to
// consider external interference — and how the multi-worker engine scales
// with the job count. Emits BENCH_statespace.json (machine-readable
// wall-clock, states/sec and speedup per job count) so the perf
// trajectory is tracked across PRs.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Entangle.h"
#include "concurroid/Priv.h"
#include "dist/Coordinator.h"
#include "dist/Wire.h"
#include "structures/FlatCombiner.h"
#include "structures/SpanTree.h"
#include "support/Format.h"
#include "support/Intern.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <cstdio>

#include <sys/resource.h>

using namespace fcsl;

namespace {

Heap chainOf(unsigned N) {
  std::vector<GraphNode> Nodes;
  for (unsigned I = 1; I <= N; ++I)
    Nodes.push_back(GraphNode{Ptr(I),
                              I < N ? Ptr(I + 1) : Ptr::null(),
                              Ptr::null()});
  return buildGraph(Nodes);
}

Heap diamondOf(unsigned Layers) {
  // 1 -> (2, 3); 2 -> 4; 3 -> 4; 4 -> (5, 6); ... a chain of diamonds.
  std::vector<GraphNode> Nodes;
  uint32_t Id = 1;
  for (unsigned L = 0; L < Layers; ++L) {
    Nodes.push_back(GraphNode{Ptr(Id), Ptr(Id + 1), Ptr(Id + 2)});
    Nodes.push_back(GraphNode{Ptr(Id + 1), Ptr(Id + 3), Ptr::null()});
    Nodes.push_back(GraphNode{Ptr(Id + 2), Ptr(Id + 3), Ptr::null()});
    Id += 3;
  }
  Nodes.push_back(GraphNode{Ptr(Id), Ptr::null(), Ptr::null()});
  return buildGraph(Nodes);
}

struct GrowthRow {
  std::string Graph;
  size_t Nodes = 0;
  uint64_t Configs = 0;
  uint64_t ActionSteps = 0;
  size_t Terminals = 0;
  double Ms = 0.0;
  uint64_t VisitedBytes = 0;
};

/// Peak resident set size of this process in kilobytes (ru_maxrss is KB
/// on Linux).
uint64_t peakRssKb() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
  return static_cast<uint64_t>(Usage.ru_maxrss);
}

/// Peak resident set size across reaped children (the forked shard
/// workers) in kilobytes.
uint64_t childPeakRssKb() {
  struct rusage Usage;
  if (getrusage(RUSAGE_CHILDREN, &Usage) != 0)
    return 0;
  return static_cast<uint64_t>(Usage.ru_maxrss);
}

struct DistRow {
  unsigned Shards = 0;
  double Ms = 0.0;
  uint64_t Configs = 0;
  bool Identical = true; ///< terminals + verdict + counters match shards=1.
  uint64_t ExchangedConfigs = 0;
  uint64_t Batches = 0;
  uint64_t Bytes = 0;
  uint64_t ChildRssKb = 0;
};

struct DistCompressRow {
  unsigned Shards = 0;
  double MsCompressed = 0.0;
  double MsLegacy = 0.0;
  uint64_t BytesCompressed = 0;
  uint64_t BytesLegacy = 0;
  uint64_t DictNodes = 0;
  uint64_t DefBytes = 0;
  uint64_t RefBytes = 0;
  bool Identical = true; ///< compressed run matches the legacy run bit-wise.
};

struct PorRow {
  std::string Graph;
  uint64_t ConfigsFull = 0;
  uint64_t ConfigsReduced = 0;
  double MsFull = 0.0;
  double MsReduced = 0.0;
  bool Identical = true; ///< reduced terminals + verdict match the full run.
};

struct SweepRow {
  unsigned Jobs = 0;      ///< requested worker count.
  unsigned Effective = 0; ///< what effectiveJobs() resolved it to.
  double Ms = 0.0;
  uint64_t Configs = 0;
  double StatesPerSec = 0.0;
  double Speedup = 1.0;
  bool Identical = true; ///< terminals + verdict match the Jobs=1 run.
};

struct SymRow {
  std::string Suite;
  uint64_t ConfigsFull = 0;
  uint64_t ConfigsCanonical = 0;
  double MsFull = 0.0;
  double MsCanonical = 0.0;
  uint64_t OrbitLookups = 0;
  uint64_t OrbitHits = 0;
  bool Identical = true; ///< canonical terminals + verdict match the full run.
};

struct SymDistRow {
  unsigned Shards = 0;
  uint64_t ConfigsFull = 0;      ///< exchanged configs, symmetry off.
  uint64_t ConfigsCanonical = 0; ///< exchanged configs, symmetry on.
  uint64_t BytesFull = 0;        ///< exchanged bytes, symmetry off.
  uint64_t BytesCanonical = 0;   ///< exchanged bytes, symmetry on.
  bool Identical = true;
};

//===----------------------------------------------------------------------===//
// A tiny counter world with interchangeable incrementing siblings: the
// symmetric workload for the symmetry-reduction section. (span_root's par
// subtrees take different arguments, so its orbits are singletons.)
//===----------------------------------------------------------------------===//

constexpr Label CtPv = 1;
constexpr Label Ct = 2;
const Ptr CtCell = Ptr(1);

struct CounterWorld {
  ConcurroidRef C;
  ActionRef Incr;
  DefTable Defs;
};

CounterWorld makeCounterWorld() {
  auto Coh = [](const View &S) {
    if (!S.hasLabel(Ct))
      return false;
    const Val *V = S.joint(Ct).tryLookup(CtCell);
    if (!V || !V->isInt())
      return false;
    return V->getInt() == static_cast<int64_t>(S.self(Ct).getNat() +
                                               S.other(Ct).getNat());
  };
  auto C =
      makeConcurroid("Counter", {OwnedLabel{Ct, "ct", PCMType::nat()}}, Coh);
  C->addTransition(Transition(
      "bump", TransitionKind::Internal,
      [](const View &) -> std::vector<View> { return {}; },
      [](const View &Pre, const View &Post) {
        if (!Pre.hasLabel(Ct) || !Post.hasLabel(Ct))
          return false;
        for (Label L : Pre.labels())
          if (L != Ct && !(Pre.slice(L) == Post.slice(L)))
            return false;
        return Post.joint(Ct).lookup(CtCell).getInt() ==
                   Pre.joint(Ct).lookup(CtCell).getInt() + 1 &&
               Post.self(Ct).getNat() == Pre.self(Ct).getNat() + 1 &&
               Pre.other(Ct) == Post.other(Ct);
      }));

  CounterWorld World;
  World.C = entangle(makePriv(CtPv), C);
  World.Incr = makeAction(
      "incr", World.C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *V = Pre.joint(Ct).tryLookup(CtCell);
        if (!V)
          return std::nullopt;
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(CtCell, Val::ofInt(V->getInt() + 1));
        Post.setJoint(Ct, std::move(Joint));
        Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return std::vector<ActOutcome>{{*V, std::move(Post)}};
      });
  return World;
}

GlobalState counterState() {
  GlobalState GS;
  GS.addLabel(CtPv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.addLabel(Ct, PCMType::nat(), Heap::singleton(CtCell, Val::ofInt(0)),
              PCMVal::ofNat(0), false);
  return GS;
}

/// A balanced symmetric par tree of 2^Depth interchangeable incrementing
/// leaves. Subtrees are shared nodes: par children are opaque to
/// structural comparison, so sharing is how nested symmetry is expressed.
ProgRef symmetricIncrTree(const CounterWorld &W, unsigned Depth) {
  ProgRef P = Prog::act(W.Incr, {});
  for (unsigned D = 0; D < Depth; ++D)
    P = Prog::par(P, P);
  return P;
}

bool sameTerminals(const std::vector<Terminal> &A,
                   const std::vector<Terminal> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, N = A.size(); I != N; ++I)
    if (A[I] < B[I] || B[I] < A[I])
      return false;
  return true;
}

} // namespace

int main() {
  std::printf("state-space growth of exhaustive span_root verification\n");
  std::printf("=======================================================\n\n");

  TextTable Table;
  Table.setHeader({"graph", "nodes", "configs", "action steps",
                   "outcomes", "time (ms)", "visited KB"});
  for (unsigned I = 1; I <= 6; ++I)
    Table.setRightAligned(I);

  std::vector<GrowthRow> Rows;
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  auto RunOne = [&](const char *Name, const Heap &G) {
    Timer T;
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(Main, spanRootState(Case, G), Opts);
    double Ms = T.elapsedMs();
    Table.addRow({Name, std::to_string(G.size()),
                  std::to_string(R.ConfigsExplored),
                  std::to_string(R.ActionSteps),
                  std::to_string(R.Terminals.size()),
                  formatString("%.1f", Ms),
                  std::to_string(R.VisitedBytes / 1024)});
    Rows.push_back(GrowthRow{Name, G.size(), R.ConfigsExplored,
                             R.ActionSteps, R.Terminals.size(), Ms,
                             R.VisitedBytes});
    return R.complete();
  };

  bool Ok = true;
  Ok &= RunOne("chain-2", chainOf(2));
  Ok &= RunOne("chain-4", chainOf(4));
  Ok &= RunOne("chain-6", chainOf(6));
  Ok &= RunOne("diamond-1", diamondOf(1));
  Ok &= RunOne("diamond-2", diamondOf(2));
  Ok &= RunOne("figure-2", figure2Graph());
  std::printf("%s\n", Table.render().c_str());

  // Multi-worker scaling on the largest instance: sweep the job count
  // from 1 to hardware_concurrency (at least 4 so the sweep is
  // informative on small machines) and verify the results are
  // bit-identical at every job count.
  std::printf("parallel exploration sweep, diamond-3 (largest "
              "instance):\n");
  std::vector<SweepRow> Sweep;
  {
    Heap G = diamondOf(3);
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    GlobalState S0 = spanRootState(Case, G);
    std::vector<unsigned> JobList;
    unsigned MaxJobs = std::max(4u, hardwareJobs());
    for (unsigned J = 1; J <= MaxJobs; J *= 2)
      JobList.push_back(J);
    if (JobList.back() != MaxJobs)
      JobList.push_back(MaxJobs);

    TextTable SweepTable;
    SweepTable.setHeader({"jobs", "effective", "configs", "time (ms)",
                          "states/sec", "speedup", "identical"});
    for (unsigned I = 0; I <= 5; ++I)
      SweepTable.setRightAligned(I);

    RunResult Base;
    double BaseMs = 0.0;
    for (unsigned Jobs : JobList) {
      EngineOptions Opts;
      Opts.Ambient = Case.PrivOnly;
      Opts.EnvInterference = false;
      Opts.Defs = &Case.Defs;
      // Route the requested count through the oversubscription guard: on
      // a single-core host (or for a tiny instance) the sweep degrades to
      // serial instead of paying for idle workers. The Jobs=1 baseline
      // runs first, so its config count sizes the work estimate.
      unsigned Effective = effectiveJobs(Jobs, Base.ConfigsExplored);
      if (Jobs == 1)
        Effective = 1;
      Opts.Jobs = Effective;
      Timer T;
      RunResult R = explore(Main, spanRootState(Case, G), Opts);
      double Ms = T.elapsedMs();
      Ok &= R.complete();
      if (Jobs == 1) {
        Base = R;
        BaseMs = Ms;
      }
      SweepRow Row;
      Row.Jobs = Jobs;
      Row.Effective = Effective;
      Row.Ms = Ms;
      Row.Configs = R.ConfigsExplored;
      Row.StatesPerSec = Ms > 0 ? R.ConfigsExplored * 1000.0 / Ms : 0;
      Row.Speedup = Ms > 0 ? BaseMs / Ms : 1.0;
      Row.Identical = R.Safe == Base.Safe &&
                      R.Exhausted == Base.Exhausted &&
                      R.ConfigsExplored == Base.ConfigsExplored &&
                      sameTerminals(R.Terminals, Base.Terminals);
      Ok &= Row.Identical;
      Sweep.push_back(Row);
      SweepTable.addRow({std::to_string(Jobs),
                         std::to_string(Row.Effective),
                         std::to_string(Row.Configs),
                         formatString("%.1f", Row.Ms),
                         formatString("%.0f", Row.StatesPerSec),
                         formatString("%.2fx", Row.Speedup),
                         Row.Identical ? "yes" : "NO"});
    }
    std::printf("%s\n", SweepTable.render().c_str());
  }

  // Partial-order reduction: full vs reduced exploration per instance.
  // The reduction must preserve verdict and terminals exactly; the ratio
  // column is the headline number (diamonds are the commuting-heavy best
  // case, chains the adversarial worst case).
  std::printf("partial-order reduction, full vs reduced exploration:\n");
  std::vector<PorRow> PorRows;
  {
    TextTable PorTable;
    PorTable.setHeader({"graph", "full cfgs", "reduced cfgs", "ratio",
                        "full ms", "reduced ms", "identical"});
    for (unsigned I = 1; I <= 5; ++I)
      PorTable.setRightAligned(I);
    auto RunPor = [&](const char *Name, const Heap &G) {
      ProgRef Main = makeSpanRootProg(Case, Ptr(1));
      EngineOptions Opts;
      Opts.Ambient = Case.PrivOnly;
      Opts.EnvInterference = false;
      Opts.Defs = &Case.Defs;
      Opts.Por = PorMode::Off;
      Timer TF;
      RunResult Full = explore(Main, spanRootState(Case, G), Opts);
      double MsFull = TF.elapsedMs();
      Opts.Por = PorMode::On;
      Timer TR;
      RunResult Red = explore(Main, spanRootState(Case, G), Opts);
      double MsRed = TR.elapsedMs();
      PorRow Row;
      Row.Graph = Name;
      Row.ConfigsFull = Full.ConfigsExplored;
      Row.ConfigsReduced = Red.ConfigsExplored;
      Row.MsFull = MsFull;
      Row.MsReduced = MsRed;
      Row.Identical = Full.Safe == Red.Safe &&
                      Full.Exhausted == Red.Exhausted &&
                      sameTerminals(Full.Terminals, Red.Terminals);
      PorRows.push_back(Row);
      PorTable.addRow(
          {Name, std::to_string(Row.ConfigsFull),
           std::to_string(Row.ConfigsReduced),
           formatString("%.3f", Row.ConfigsFull
                                    ? double(Row.ConfigsReduced) /
                                          double(Row.ConfigsFull)
                                    : 1.0),
           formatString("%.1f", MsFull), formatString("%.1f", MsRed),
           Row.Identical ? "yes" : "NO"});
      return Full.complete() && Red.complete() && Row.Identical;
    };
    Ok &= RunPor("chain-4", chainOf(4));
    Ok &= RunPor("chain-6", chainOf(6));
    Ok &= RunPor("diamond-1", diamondOf(1));
    Ok &= RunPor("diamond-2", diamondOf(2));
    Ok &= RunPor("diamond-3", diamondOf(3));
    Ok &= RunPor("figure-2", figure2Graph());
    std::printf("%s\n", PorTable.render().c_str());
  }

  // Dynamic partial-order reduction (DESIGN.md §12): ample sets licensed
  // by observed footprints and the env-future closure, where the static
  // relation alone finds nothing. The flat combiner — whose static
  // footprints all clash through the publication slots — is the headline;
  // the spanning diamonds ride along to show dynamic never does worse
  // than static.
  std::printf("dynamic partial-order reduction, full vs dynamic:\n");
  std::vector<PorRow> DynPorRows;
  {
    TextTable DynTable;
    DynTable.setHeader({"suite", "full cfgs", "dynamic cfgs", "ratio",
                        "full ms", "dynamic ms", "identical"});
    for (unsigned I = 1; I <= 5; ++I)
      DynTable.setRightAligned(I);
    auto RunDyn = [&](const char *Name, const ProgRef &Main,
                      const GlobalState &S0, EngineOptions Opts) {
      Opts.Por = PorMode::Off;
      Timer TF;
      RunResult Full = explore(Main, S0, Opts);
      double MsFull = TF.elapsedMs();
      Opts.Por = PorMode::Dynamic;
      Timer TR;
      RunResult Dyn = explore(Main, S0, Opts);
      double MsDyn = TR.elapsedMs();
      PorRow Row;
      Row.Graph = Name;
      Row.ConfigsFull = Full.ConfigsExplored;
      Row.ConfigsReduced = Dyn.ConfigsExplored;
      Row.MsFull = MsFull;
      Row.MsReduced = MsDyn;
      Row.Identical = Full.Safe == Dyn.Safe &&
                      Full.Exhausted == Dyn.Exhausted &&
                      sameTerminals(Full.Terminals, Dyn.Terminals);
      DynPorRows.push_back(Row);
      DynTable.addRow(
          {Name, std::to_string(Row.ConfigsFull),
           std::to_string(Row.ConfigsReduced),
           formatString("%.3f", Row.ConfigsFull
                                    ? double(Row.ConfigsReduced) /
                                          double(Row.ConfigsFull)
                                    : 1.0),
           formatString("%.1f", MsFull), formatString("%.1f", MsDyn),
           Row.Identical ? "yes" : "NO"});
      return Full.complete() && Dyn.complete() && Row.Identical;
    };
    {
      EngineOptions SpanOpts;
      SpanOpts.Ambient = Case.PrivOnly;
      SpanOpts.EnvInterference = false;
      SpanOpts.Defs = &Case.Defs;
      SpanOpts.Jobs = 1;
      Ok &= RunDyn("span-diamond-2", makeSpanRootProg(Case, Ptr(1)),
                   spanRootState(Case, diamondOf(2)), SpanOpts);
      Ok &= RunDyn("span-figure-2", makeSpanRootProg(Case, Ptr(1)),
                   spanRootState(Case, figure2Graph()), SpanOpts);
    }
    {
      FlatCombinerCase FcCase =
          makeFlatCombinerCase(/*Fc=*/4, /*EnvHistCap=*/4);
      EngineOptions FcOpts;
      FcOpts.Ambient = FcCase.C;
      FcOpts.EnvInterference = true;
      FcOpts.Defs = &FcCase.Defs;
      FcOpts.Jobs = 1;
      Ok &= RunDyn("flat-combiner",
                   Prog::call("flat_combine",
                              {Expr::litPtr(FcCase.Slot1),
                               Expr::litInt(FcPush), Expr::litInt(4)}),
                   flatCombinerState(FcCase, 1), FcOpts);
    }
    std::printf("%s\n", DynTable.render().c_str());
  }

  // Multi-process sharded exploration (src/dist/): shard sweep on
  // diamond-2, checking bit-identity against the in-process run and
  // recording the frontier-exchange volume per shard count.
  std::printf("sharded exploration sweep, diamond-2:\n");
  std::vector<DistRow> DistRows;
  {
    Heap G = diamondOf(2);
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    Opts.Jobs = 1;
    TextTable DistTable;
    DistTable.setHeader({"shards", "configs", "time (ms)", "exchanged",
                         "batches", "bytes", "child rss KB", "identical"});
    for (unsigned I = 0; I <= 6; ++I)
      DistTable.setRightAligned(I);
    Timer TB;
    RunResult Base = explore(Main, spanRootState(Case, G), Opts);
    double BaseMs = TB.elapsedMs();
    Ok &= Base.complete();
    DistRows.push_back(DistRow{1, BaseMs, Base.ConfigsExplored, true, 0, 0,
                               0, 0});
    for (unsigned Shards : {2u, 4u}) {
      dist::FleetStats Before = dist::fleetTotals();
      Timer T;
      RunResult R = dist::distributedExplore(Main, spanRootState(Case, G),
                                             Opts, {}, Shards);
      double Ms = T.elapsedMs();
      dist::FleetStats After = dist::fleetTotals();
      DistRow Row;
      Row.Shards = Shards;
      Row.Ms = Ms;
      Row.Configs = R.ConfigsExplored;
      Row.Identical = R.Safe == Base.Safe &&
                      R.Exhausted == Base.Exhausted &&
                      R.ConfigsExplored == Base.ConfigsExplored &&
                      R.ActionSteps == Base.ActionSteps &&
                      sameTerminals(R.Terminals, Base.Terminals);
      Row.ExchangedConfigs = After.Configs - Before.Configs;
      Row.Batches = After.Messages - Before.Messages;
      Row.Bytes = After.Bytes - Before.Bytes;
      // Max over THIS run's children (LastRun), not the process-lifetime
      // high-water mark: the cumulative counter never decreases, so it
      // reported the same value for every shard count in one process.
      for (const dist::ShardExchange &S : After.LastRun)
        Row.ChildRssKb = std::max(Row.ChildRssKb, S.MaxRssKb);
      Ok &= R.complete() && Row.Identical;
      DistRows.push_back(Row);
    }
    for (const DistRow &R : DistRows)
      DistTable.addRow({std::to_string(R.Shards),
                        std::to_string(R.Configs),
                        formatString("%.1f", R.Ms),
                        std::to_string(R.ExchangedConfigs),
                        std::to_string(R.Batches),
                        std::to_string(R.Bytes),
                        std::to_string(R.ChildRssKb),
                        R.Identical ? "yes" : "NO"});
    std::printf("%s\n", DistTable.render().c_str());
  }

  // Dictionary-streamed frontier protocol (DESIGN.md §14): compressed vs
  // legacy wire encoding on the same diamond-2 workload, A/B per shard
  // count. The compressed run must be bit-identical to the legacy one and
  // ship >= 5x fewer frame bytes (each interned node crosses a connection
  // once as a definition, thereafter as a varint reference).
  std::printf("dictionary wire compression, diamond-2:\n");
  std::vector<DistCompressRow> DistCompressRows;
  {
    Heap G = diamondOf(2);
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    Opts.Jobs = 1;
    TextTable CmpTable;
    CmpTable.setHeader({"shards", "bytes (dict)", "bytes (legacy)",
                        "reduction", "dict nodes", "def B", "ref B",
                        "time dict (ms)", "time legacy (ms)", "identical"});
    for (unsigned I = 0; I <= 8; ++I)
      CmpTable.setRightAligned(I);
    for (unsigned Shards : {2u, 4u}) {
      DistCompressRow Row;
      Row.Shards = Shards;

      dist::setDistCompress(true);
      dist::FleetStats Before = dist::fleetTotals();
      Timer TC;
      RunResult Compressed = dist::distributedExplore(
          Main, spanRootState(Case, G), Opts, {}, Shards);
      Row.MsCompressed = TC.elapsedMs();
      dist::FleetStats Mid = dist::fleetTotals();
      Row.BytesCompressed = Mid.Bytes - Before.Bytes;
      for (const dist::ShardExchange &S : Mid.LastRun) {
        Row.DictNodes += S.DictNodes;
        Row.DefBytes += S.DictDefBytes;
        Row.RefBytes += S.DictRefBytes;
      }

      dist::setDistCompress(false);
      Timer TL;
      RunResult Legacy = dist::distributedExplore(
          Main, spanRootState(Case, G), Opts, {}, Shards);
      Row.MsLegacy = TL.elapsedMs();
      dist::FleetStats After = dist::fleetTotals();
      Row.BytesLegacy = After.Bytes - Mid.Bytes;
      dist::setDistCompress(true);

      Row.Identical = Compressed.Safe == Legacy.Safe &&
                      Compressed.Exhausted == Legacy.Exhausted &&
                      Compressed.ConfigsExplored == Legacy.ConfigsExplored &&
                      Compressed.ActionSteps == Legacy.ActionSteps &&
                      Compressed.DedupHits == Legacy.DedupHits &&
                      sameTerminals(Compressed.Terminals, Legacy.Terminals);
      bool Reduced = Row.BytesCompressed * 5 <= Row.BytesLegacy;
      if (!Reduced)
        std::printf("  FAIL: %u-shard dictionary bytes %llu not >=5x below "
                    "legacy %llu\n",
                    Shards,
                    static_cast<unsigned long long>(Row.BytesCompressed),
                    static_cast<unsigned long long>(Row.BytesLegacy));
      Ok &= Compressed.complete() && Legacy.complete() && Row.Identical &&
            Reduced;
      DistCompressRows.push_back(Row);
      double Ratio = Row.BytesCompressed
                         ? static_cast<double>(Row.BytesLegacy) /
                               static_cast<double>(Row.BytesCompressed)
                         : 0.0;
      CmpTable.addRow({std::to_string(Row.Shards),
                       std::to_string(Row.BytesCompressed),
                       std::to_string(Row.BytesLegacy),
                       formatString("%.1fx", Ratio),
                       std::to_string(Row.DictNodes),
                       std::to_string(Row.DefBytes),
                       std::to_string(Row.RefBytes),
                       formatString("%.1f", Row.MsCompressed),
                       formatString("%.1f", Row.MsLegacy),
                       Row.Identical ? "yes" : "NO"});
    }
    std::printf("%s\n", CmpTable.render().c_str());
  }

  // Symmetry reduction (DESIGN.md §11): orbit canonicalization of
  // interchangeable incrementing siblings, full vs canonical exploration,
  // plus the shard-exchange savings when canonical fingerprints own whole
  // orbits. span_root rides along as the no-symmetry control.
  std::printf("symmetry reduction, full vs canonical exploration:\n");
  std::vector<SymRow> SymRows;
  std::vector<SymDistRow> SymDistRows;
  {
    CounterWorld W = makeCounterWorld();
    EngineOptions CtOpts;
    CtOpts.Ambient = W.C;
    CtOpts.EnvInterference = false;
    CtOpts.Defs = &W.Defs;
    CtOpts.Jobs = 1;

    TextTable SymTable;
    SymTable.setHeader({"suite", "full cfgs", "canonical cfgs", "ratio",
                        "cache hits", "identical"});
    for (unsigned I = 1; I <= 4; ++I)
      SymTable.setRightAligned(I);

    auto RunSym = [&](const char *Name, const ProgRef &Main,
                      const GlobalState &S0, EngineOptions Opts) {
      Opts.Symmetry = SymMode::Off;
      Timer TF;
      RunResult Full = explore(Main, S0, Opts);
      double MsF = TF.elapsedMs();
      SymmetryStats Before = symmetryStats();
      Opts.Symmetry = SymMode::On;
      Timer TC;
      RunResult Canon = explore(Main, S0, Opts);
      double MsC = TC.elapsedMs();
      SymmetryStats After = symmetryStats();
      SymRow Row;
      Row.Suite = Name;
      Row.ConfigsFull = Full.ConfigsExplored;
      Row.ConfigsCanonical = Canon.ConfigsExplored;
      Row.MsFull = MsF;
      Row.MsCanonical = MsC;
      Row.OrbitLookups = After.Lookups - Before.Lookups;
      Row.OrbitHits = After.Hits - Before.Hits;
      Row.Identical = Full.Safe == Canon.Safe &&
                      Full.Exhausted == Canon.Exhausted &&
                      sameTerminals(Full.Terminals, Canon.Terminals);
      Ok &= Full.complete() && Canon.complete() && Row.Identical;
      SymRows.push_back(Row);
      SymTable.addRow(
          {Name, std::to_string(Row.ConfigsFull),
           std::to_string(Row.ConfigsCanonical),
           formatString("%.3f", Row.ConfigsFull
                                    ? double(Row.ConfigsCanonical) /
                                          double(Row.ConfigsFull)
                                    : 1.0),
           std::to_string(Row.OrbitHits), Row.Identical ? "yes" : "NO"});
    };

    RunSym("counter-pair", symmetricIncrTree(W, 1), counterState(), CtOpts);
    RunSym("counter-quad", symmetricIncrTree(W, 2), counterState(), CtOpts);
    {
      EngineOptions SpanOpts;
      SpanOpts.Ambient = Case.PrivOnly;
      SpanOpts.EnvInterference = false;
      SpanOpts.Defs = &Case.Defs;
      SpanOpts.Jobs = 1;
      RunSym("span-diamond-1", makeSpanRootProg(Case, Ptr(1)),
             spanRootState(Case, diamondOf(1)), SpanOpts);
    }
    std::printf("%s\n", SymTable.render().c_str());

    // Shard exchange on the symmetric suite: canonical fingerprints give
    // every orbit one owner, so fewer configs (and bytes) cross shard
    // boundaries than under plain fingerprint ownership.
    std::printf("shard exchange on counter-quad, plain vs canonical "
                "fingerprints:\n");
    TextTable SymDistTable;
    SymDistTable.setHeader({"shards", "exch full", "exch canon",
                            "bytes full", "bytes canon", "identical"});
    for (unsigned I = 0; I <= 4; ++I)
      SymDistTable.setRightAligned(I);
    ProgRef Quad = symmetricIncrTree(W, 2);
    for (unsigned Shards : {2u, 4u}) {
      SymDistRow Row;
      Row.Shards = Shards;
      EngineOptions Opts = CtOpts;
      Opts.Symmetry = SymMode::Off;
      dist::FleetStats Before = dist::fleetTotals();
      RunResult Full =
          dist::distributedExplore(Quad, counterState(), Opts, {}, Shards);
      dist::FleetStats Mid = dist::fleetTotals();
      Opts.Symmetry = SymMode::On;
      RunResult Canon =
          dist::distributedExplore(Quad, counterState(), Opts, {}, Shards);
      dist::FleetStats After = dist::fleetTotals();
      Row.ConfigsFull = Mid.Configs - Before.Configs;
      Row.ConfigsCanonical = After.Configs - Mid.Configs;
      Row.BytesFull = Mid.Bytes - Before.Bytes;
      Row.BytesCanonical = After.Bytes - Mid.Bytes;
      Row.Identical = Full.Safe == Canon.Safe &&
                      Full.Exhausted == Canon.Exhausted &&
                      sameTerminals(Full.Terminals, Canon.Terminals);
      Ok &= Full.complete() && Canon.complete() && Row.Identical;
      SymDistRows.push_back(Row);
      SymDistTable.addRow({std::to_string(Shards),
                           std::to_string(Row.ConfigsFull),
                           std::to_string(Row.ConfigsCanonical),
                           std::to_string(Row.BytesFull),
                           std::to_string(Row.BytesCanonical),
                           Row.Identical ? "yes" : "NO"});
    }
    std::printf("%s\n", SymDistTable.render().c_str());
  }

  // Randomized simulation past the exhaustive frontier: the same model
  // program, sampled schedules, instances exploration cannot touch.
  std::printf("randomized simulation of span_root beyond the exhaustive "
              "frontier:\n");
  {
    TextTable SimTable;
    SimTable.setHeader({"nodes", "seeds", "spanning trees", "avg steps",
                        "time (ms)"});
    for (unsigned I = 0; I <= 4; ++I)
      SimTable.setRightAligned(I);
    Rng GraphRng(0x600d);
    for (unsigned N : {8u, 16u, 32u, 64u}) {
      Heap G = randomGraph(N, GraphRng, /*ConnectedFromRoot=*/true);
      Timer T;
      unsigned Spanning = 0;
      uint64_t TotalSteps = 0;
      const unsigned Seeds = 20;
      for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
        EngineOptions Opts;
        Opts.Ambient = Case.PrivOnly;
        Opts.EnvInterference = false;
        Opts.Defs = &Case.Defs;
        SimResult Sim = simulate(makeSpanRootProg(Case, Ptr(1)),
                                 spanRootState(Case, G), Opts, Seed);
        TotalSteps += Sim.Steps;
        if (!Sim.Safe || !Sim.Terminated)
          continue;
        const Heap &G2 = Sim.FinalView.self(1).getHeap();
        PtrSet All;
        for (const auto &Cell : G2)
          All.insert(Cell.first);
        Spanning += isTreeIn(G2, Ptr(1), All);
      }
      SimTable.addRow({std::to_string(N), std::to_string(Seeds),
                       std::to_string(Spanning),
                       std::to_string(TotalSteps / Seeds),
                       formatString("%.1f", T.elapsedMs())});
      Ok &= Spanning == Seeds;
    }
    std::printf("%s\n", SimTable.render().c_str());
  }

  // Open vs closed world on a 3-node instance.
  std::printf("open-world (interference) vs closed-world (hide) cost, "
              "3-node graph:\n");
  Heap G3 = chainOf(3);
  {
    Timer T;
    EngineOptions Opts;
    Opts.Ambient = Case.Open;
    Opts.EnvInterference = true;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(Prog::call("span", {Expr::litPtr(Ptr(1))}),
                          spanOpenState(Case, G3, {}), Opts);
    std::printf("  open:   %8llu configs  %7.1f ms\n",
                static_cast<unsigned long long>(R.ConfigsExplored),
                T.elapsedMs());
    Ok &= R.complete();
  }
  {
    Timer T;
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(makeSpanRootProg(Case, Ptr(1)),
                          spanRootState(Case, G3), Opts);
    std::printf("  hidden: %8llu configs  %7.1f ms\n",
                static_cast<unsigned long long>(R.ConfigsExplored),
                T.elapsedMs());
    Ok &= R.complete();
  }

  // Machine-readable trajectory for cross-PR tracking.
  if (std::FILE *F = std::fopen("BENCH_statespace.json", "w")) {
    std::fprintf(F, "{\n  \"bench\": \"statespace\",\n");
    std::fprintf(F, "  \"hardware_concurrency\": %u,\n", hardwareJobs());
    std::fprintf(F, "  \"growth\": [\n");
    for (size_t I = 0; I != Rows.size(); ++I) {
      const GrowthRow &R = Rows[I];
      std::fprintf(F,
                   "    {\"graph\": \"%s\", \"nodes\": %zu, \"configs\": "
                   "%llu, \"action_steps\": %llu, \"terminals\": %zu, "
                   "\"ms\": %.2f, \"visited_bytes\": %llu}%s\n",
                   R.Graph.c_str(), R.Nodes,
                   static_cast<unsigned long long>(R.Configs),
                   static_cast<unsigned long long>(R.ActionSteps),
                   R.Terminals, R.Ms,
                   static_cast<unsigned long long>(R.VisitedBytes),
                   I + 1 == Rows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"jobs_sweep\": {\"graph\": \"diamond-3\", "
                    "\"runs\": [\n");
    for (size_t I = 0; I != Sweep.size(); ++I) {
      const SweepRow &R = Sweep[I];
      std::fprintf(F,
                   "    {\"jobs\": %u, \"effective_jobs\": %u, "
                   "\"ms\": %.2f, \"configs\": %llu, "
                   "\"states_per_sec\": %.0f, \"speedup\": %.3f, "
                   "\"identical\": %s}%s\n",
                   R.Jobs, R.Effective, R.Ms,
                   static_cast<unsigned long long>(R.Configs),
                   R.StatesPerSec, R.Speedup,
                   R.Identical ? "true" : "false",
                   I + 1 == Sweep.size() ? "" : ",");
    }
    std::fprintf(F, "  ]},\n");
    std::fprintf(F, "  \"por\": [\n");
    for (size_t I = 0; I != PorRows.size(); ++I) {
      const PorRow &R = PorRows[I];
      std::fprintf(F,
                   "    {\"graph\": \"%s\", \"configs_full\": %llu, "
                   "\"configs_reduced\": %llu, \"ratio\": %.3f, "
                   "\"ms_full\": %.2f, \"ms_reduced\": %.2f, "
                   "\"identical\": %s}%s\n",
                   R.Graph.c_str(),
                   static_cast<unsigned long long>(R.ConfigsFull),
                   static_cast<unsigned long long>(R.ConfigsReduced),
                   R.ConfigsFull
                       ? double(R.ConfigsReduced) / double(R.ConfigsFull)
                       : 1.0,
                   R.MsFull, R.MsReduced, R.Identical ? "true" : "false",
                   I + 1 == PorRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"dynpor\": [\n");
    for (size_t I = 0; I != DynPorRows.size(); ++I) {
      const PorRow &R = DynPorRows[I];
      std::fprintf(F,
                   "    {\"suite\": \"%s\", \"configs_full\": %llu, "
                   "\"configs_dynamic\": %llu, \"ratio\": %.3f, "
                   "\"ms_full\": %.2f, \"ms_dynamic\": %.2f, "
                   "\"identical\": %s}%s\n",
                   R.Graph.c_str(),
                   static_cast<unsigned long long>(R.ConfigsFull),
                   static_cast<unsigned long long>(R.ConfigsReduced),
                   R.ConfigsFull
                       ? double(R.ConfigsReduced) / double(R.ConfigsFull)
                       : 1.0,
                   R.MsFull, R.MsReduced, R.Identical ? "true" : "false",
                   I + 1 == DynPorRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"dist\": {\"graph\": \"diamond-2\", \"runs\": [\n");
    for (size_t I = 0; I != DistRows.size(); ++I) {
      const DistRow &R = DistRows[I];
      std::fprintf(F,
                   "    {\"shards\": %u, \"ms\": %.2f, \"configs\": %llu, "
                   "\"exchanged_configs\": %llu, \"batches\": %llu, "
                   "\"bytes\": %llu, \"child_rss_kb\": %llu, "
                   "\"identical\": %s}%s\n",
                   R.Shards, R.Ms,
                   static_cast<unsigned long long>(R.Configs),
                   static_cast<unsigned long long>(R.ExchangedConfigs),
                   static_cast<unsigned long long>(R.Batches),
                   static_cast<unsigned long long>(R.Bytes),
                   static_cast<unsigned long long>(R.ChildRssKb),
                   R.Identical ? "true" : "false",
                   I + 1 == DistRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ]},\n");
    std::fprintf(F, "  \"dist_compress\": {\"graph\": \"diamond-2\", "
                    "\"runs\": [\n");
    for (size_t I = 0; I != DistCompressRows.size(); ++I) {
      const DistCompressRow &R = DistCompressRows[I];
      double Ratio = R.BytesCompressed
                         ? static_cast<double>(R.BytesLegacy) /
                               static_cast<double>(R.BytesCompressed)
                         : 0.0;
      std::fprintf(F,
                   "    {\"shards\": %u, \"bytes_compressed\": %llu, "
                   "\"bytes_legacy\": %llu, \"reduction\": %.2f, "
                   "\"dict_nodes\": %llu, \"def_bytes\": %llu, "
                   "\"ref_bytes\": %llu, \"ms_compressed\": %.2f, "
                   "\"ms_legacy\": %.2f, \"identical\": %s}%s\n",
                   R.Shards,
                   static_cast<unsigned long long>(R.BytesCompressed),
                   static_cast<unsigned long long>(R.BytesLegacy), Ratio,
                   static_cast<unsigned long long>(R.DictNodes),
                   static_cast<unsigned long long>(R.DefBytes),
                   static_cast<unsigned long long>(R.RefBytes),
                   R.MsCompressed, R.MsLegacy,
                   R.Identical ? "true" : "false",
                   I + 1 == DistCompressRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ]},\n");
    std::fprintf(F, "  \"symmetry\": {\"suites\": [\n");
    for (size_t I = 0; I != SymRows.size(); ++I) {
      const SymRow &R = SymRows[I];
      std::fprintf(F,
                   "    {\"suite\": \"%s\", \"configs_full\": %llu, "
                   "\"configs_canonical\": %llu, \"ratio\": %.3f, "
                   "\"orbit_cache_lookups\": %llu, "
                   "\"orbit_cache_hits\": %llu, "
                   "\"ms_full\": %.2f, \"ms_canonical\": %.2f, "
                   "\"identical\": %s}%s\n",
                   R.Suite.c_str(),
                   static_cast<unsigned long long>(R.ConfigsFull),
                   static_cast<unsigned long long>(R.ConfigsCanonical),
                   R.ConfigsFull ? double(R.ConfigsCanonical) /
                                       double(R.ConfigsFull)
                                 : 1.0,
                   static_cast<unsigned long long>(R.OrbitLookups),
                   static_cast<unsigned long long>(R.OrbitHits),
                   R.MsFull, R.MsCanonical,
                   R.Identical ? "true" : "false",
                   I + 1 == SymRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ], \"dist\": {\"suite\": \"counter-quad\", "
                    "\"runs\": [\n");
    for (size_t I = 0; I != SymDistRows.size(); ++I) {
      const SymDistRow &R = SymDistRows[I];
      std::fprintf(F,
                   "    {\"shards\": %u, \"exchanged_full\": %llu, "
                   "\"exchanged_canonical\": %llu, \"bytes_full\": %llu, "
                   "\"bytes_canonical\": %llu, \"identical\": %s}%s\n",
                   R.Shards,
                   static_cast<unsigned long long>(R.ConfigsFull),
                   static_cast<unsigned long long>(R.ConfigsCanonical),
                   static_cast<unsigned long long>(R.BytesFull),
                   static_cast<unsigned long long>(R.BytesCanonical),
                   R.Identical ? "true" : "false",
                   I + 1 == SymDistRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ]}},\n");
    InternStats IS = internStats();
    std::fprintf(F,
                 "  \"memory\": {\"peak_rss_kb\": %llu, "
                 "\"children_rss_kb\": %llu, "
                 "\"peak_visited_configs\": %llu, "
                 "\"peak_visited_bytes\": %llu, "
                 "\"intern_requests\": %llu, \"intern_nodes\": %llu, "
                 "\"dedup_ratio\": %.3f}\n",
                 static_cast<unsigned long long>(peakRssKb()),
                 static_cast<unsigned long long>(childPeakRssKb()),
                 static_cast<unsigned long long>(peakVisitedNodes()),
                 static_cast<unsigned long long>(peakVisitedBytes()),
                 static_cast<unsigned long long>(IS.totalRequests()),
                 static_cast<unsigned long long>(IS.totalNodes()),
                 IS.dedupRatio());
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote BENCH_statespace.json\n");
    std::printf("peak RSS: %llu KB; peak visited set: %llu configs, "
                "%llu bytes; intern dedup %.2fx\n",
                static_cast<unsigned long long>(peakRssKb()),
                static_cast<unsigned long long>(peakVisitedNodes()),
                static_cast<unsigned long long>(peakVisitedBytes()),
                IS.dedupRatio());
  }
  return Ok ? 0 : 1;
}
