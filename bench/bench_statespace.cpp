//===- bench/bench_statespace.cpp - Exploration-cost ablation --------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// An ablation unique to the model-checking substitution: how the explored
// state space grows with instance size, and how much the closed-world
// `hide` (no interference) saves over open-world verification — the
// quantitative counterpart of the paper's point that hiding removes the
// need to consider external interference.
//
//===----------------------------------------------------------------------===//

#include "structures/SpanTree.h"
#include "support/Format.h"
#include "support/Stats.h"

#include <cstdio>

using namespace fcsl;

namespace {

Heap chainOf(unsigned N) {
  std::vector<GraphNode> Nodes;
  for (unsigned I = 1; I <= N; ++I)
    Nodes.push_back(GraphNode{Ptr(I),
                              I < N ? Ptr(I + 1) : Ptr::null(),
                              Ptr::null()});
  return buildGraph(Nodes);
}

Heap diamondOf(unsigned Layers) {
  // 1 -> (2, 3); 2 -> 4; 3 -> 4; 4 -> (5, 6); ... a chain of diamonds.
  std::vector<GraphNode> Nodes;
  uint32_t Id = 1;
  for (unsigned L = 0; L < Layers; ++L) {
    Nodes.push_back(GraphNode{Ptr(Id), Ptr(Id + 1), Ptr(Id + 2)});
    Nodes.push_back(GraphNode{Ptr(Id + 1), Ptr(Id + 3), Ptr::null()});
    Nodes.push_back(GraphNode{Ptr(Id + 2), Ptr(Id + 3), Ptr::null()});
    Id += 3;
  }
  Nodes.push_back(GraphNode{Ptr(Id), Ptr::null(), Ptr::null()});
  return buildGraph(Nodes);
}

} // namespace

int main() {
  std::printf("state-space growth of exhaustive span_root verification\n");
  std::printf("=======================================================\n\n");

  TextTable Table;
  Table.setHeader({"graph", "nodes", "configs", "action steps",
                   "outcomes", "time (ms)"});
  for (unsigned I = 1; I <= 5; ++I)
    Table.setRightAligned(I);

  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  auto RunOne = [&](const char *Name, const Heap &G) {
    Timer T;
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(Main, spanRootState(Case, G), Opts);
    Table.addRow({Name, std::to_string(G.size()),
                  std::to_string(R.ConfigsExplored),
                  std::to_string(R.ActionSteps),
                  std::to_string(R.Terminals.size()),
                  formatString("%.1f", T.elapsedMs())});
    return R.complete();
  };

  bool Ok = true;
  Ok &= RunOne("chain-2", chainOf(2));
  Ok &= RunOne("chain-4", chainOf(4));
  Ok &= RunOne("chain-6", chainOf(6));
  Ok &= RunOne("diamond-1", diamondOf(1));
  Ok &= RunOne("diamond-2", diamondOf(2));
  Ok &= RunOne("figure-2", figure2Graph());
  std::printf("%s\n", Table.render().c_str());

  // Randomized simulation past the exhaustive frontier: the same model
  // program, sampled schedules, instances exploration cannot touch.
  std::printf("randomized simulation of span_root beyond the exhaustive "
              "frontier:\n");
  {
    TextTable SimTable;
    SimTable.setHeader({"nodes", "seeds", "spanning trees", "avg steps",
                        "time (ms)"});
    for (unsigned I = 0; I <= 4; ++I)
      SimTable.setRightAligned(I);
    Rng GraphRng(0x600d);
    for (unsigned N : {8u, 16u, 32u, 64u}) {
      Heap G = randomGraph(N, GraphRng, /*ConnectedFromRoot=*/true);
      Timer T;
      unsigned Spanning = 0;
      uint64_t TotalSteps = 0;
      const unsigned Seeds = 20;
      for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
        EngineOptions Opts;
        Opts.Ambient = Case.PrivOnly;
        Opts.EnvInterference = false;
        Opts.Defs = &Case.Defs;
        SimResult Sim = simulate(makeSpanRootProg(Case, Ptr(1)),
                                 spanRootState(Case, G), Opts, Seed);
        TotalSteps += Sim.Steps;
        if (!Sim.Safe || !Sim.Terminated)
          continue;
        const Heap &G2 = Sim.FinalView.self(1).getHeap();
        PtrSet All;
        for (const auto &Cell : G2)
          All.insert(Cell.first);
        Spanning += isTreeIn(G2, Ptr(1), All);
      }
      SimTable.addRow({std::to_string(N), std::to_string(Seeds),
                       std::to_string(Spanning),
                       std::to_string(TotalSteps / Seeds),
                       formatString("%.1f", T.elapsedMs())});
      Ok &= Spanning == Seeds;
    }
    std::printf("%s\n", SimTable.render().c_str());
  }

  // Open vs closed world on a 3-node instance.
  std::printf("open-world (interference) vs closed-world (hide) cost, "
              "3-node graph:\n");
  Heap G3 = chainOf(3);
  {
    Timer T;
    EngineOptions Opts;
    Opts.Ambient = Case.Open;
    Opts.EnvInterference = true;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(Prog::call("span", {Expr::litPtr(Ptr(1))}),
                          spanOpenState(Case, G3, {}), Opts);
    std::printf("  open:   %8llu configs  %7.1f ms\n",
                static_cast<unsigned long long>(R.ConfigsExplored),
                T.elapsedMs());
    Ok &= R.complete();
  }
  {
    Timer T;
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(makeSpanRootProg(Case, Ptr(1)),
                          spanRootState(Case, G3), Opts);
    std::printf("  hidden: %8llu configs  %7.1f ms\n",
                static_cast<unsigned long long>(R.ConfigsExplored),
                T.elapsedMs());
    Ok &= R.complete();
  }
  return Ok ? 0 : 1;
}
