//===- bench/bench_statespace.cpp - Exploration-cost ablation --------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// An ablation unique to the model-checking substitution: how the explored
// state space grows with instance size, how much the closed-world `hide`
// (no interference) saves over open-world verification — the quantitative
// counterpart of the paper's point that hiding removes the need to
// consider external interference — and how the multi-worker engine scales
// with the job count. Emits BENCH_statespace.json (machine-readable
// wall-clock, states/sec and speedup per job count) so the perf
// trajectory is tracked across PRs.
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "structures/SpanTree.h"
#include "support/Format.h"
#include "support/Intern.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <cstdio>

#include <sys/resource.h>

using namespace fcsl;

namespace {

Heap chainOf(unsigned N) {
  std::vector<GraphNode> Nodes;
  for (unsigned I = 1; I <= N; ++I)
    Nodes.push_back(GraphNode{Ptr(I),
                              I < N ? Ptr(I + 1) : Ptr::null(),
                              Ptr::null()});
  return buildGraph(Nodes);
}

Heap diamondOf(unsigned Layers) {
  // 1 -> (2, 3); 2 -> 4; 3 -> 4; 4 -> (5, 6); ... a chain of diamonds.
  std::vector<GraphNode> Nodes;
  uint32_t Id = 1;
  for (unsigned L = 0; L < Layers; ++L) {
    Nodes.push_back(GraphNode{Ptr(Id), Ptr(Id + 1), Ptr(Id + 2)});
    Nodes.push_back(GraphNode{Ptr(Id + 1), Ptr(Id + 3), Ptr::null()});
    Nodes.push_back(GraphNode{Ptr(Id + 2), Ptr(Id + 3), Ptr::null()});
    Id += 3;
  }
  Nodes.push_back(GraphNode{Ptr(Id), Ptr::null(), Ptr::null()});
  return buildGraph(Nodes);
}

struct GrowthRow {
  std::string Graph;
  size_t Nodes = 0;
  uint64_t Configs = 0;
  uint64_t ActionSteps = 0;
  size_t Terminals = 0;
  double Ms = 0.0;
  uint64_t VisitedBytes = 0;
};

/// Peak resident set size of this process in kilobytes (ru_maxrss is KB
/// on Linux).
uint64_t peakRssKb() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
  return static_cast<uint64_t>(Usage.ru_maxrss);
}

/// Peak resident set size across reaped children (the forked shard
/// workers) in kilobytes.
uint64_t childPeakRssKb() {
  struct rusage Usage;
  if (getrusage(RUSAGE_CHILDREN, &Usage) != 0)
    return 0;
  return static_cast<uint64_t>(Usage.ru_maxrss);
}

struct DistRow {
  unsigned Shards = 0;
  double Ms = 0.0;
  uint64_t Configs = 0;
  bool Identical = true; ///< terminals + verdict + counters match shards=1.
  uint64_t ExchangedConfigs = 0;
  uint64_t Batches = 0;
  uint64_t Bytes = 0;
  uint64_t ChildRssKb = 0;
};

struct PorRow {
  std::string Graph;
  uint64_t ConfigsFull = 0;
  uint64_t ConfigsReduced = 0;
  double MsFull = 0.0;
  double MsReduced = 0.0;
  bool Identical = true; ///< reduced terminals + verdict match the full run.
};

struct SweepRow {
  unsigned Jobs = 0;
  double Ms = 0.0;
  uint64_t Configs = 0;
  double StatesPerSec = 0.0;
  double Speedup = 1.0;
  bool Identical = true; ///< terminals + verdict match the Jobs=1 run.
};

bool sameTerminals(const std::vector<Terminal> &A,
                   const std::vector<Terminal> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, N = A.size(); I != N; ++I)
    if (A[I] < B[I] || B[I] < A[I])
      return false;
  return true;
}

} // namespace

int main() {
  std::printf("state-space growth of exhaustive span_root verification\n");
  std::printf("=======================================================\n\n");

  TextTable Table;
  Table.setHeader({"graph", "nodes", "configs", "action steps",
                   "outcomes", "time (ms)", "visited KB"});
  for (unsigned I = 1; I <= 6; ++I)
    Table.setRightAligned(I);

  std::vector<GrowthRow> Rows;
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  auto RunOne = [&](const char *Name, const Heap &G) {
    Timer T;
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(Main, spanRootState(Case, G), Opts);
    double Ms = T.elapsedMs();
    Table.addRow({Name, std::to_string(G.size()),
                  std::to_string(R.ConfigsExplored),
                  std::to_string(R.ActionSteps),
                  std::to_string(R.Terminals.size()),
                  formatString("%.1f", Ms),
                  std::to_string(R.VisitedBytes / 1024)});
    Rows.push_back(GrowthRow{Name, G.size(), R.ConfigsExplored,
                             R.ActionSteps, R.Terminals.size(), Ms,
                             R.VisitedBytes});
    return R.complete();
  };

  bool Ok = true;
  Ok &= RunOne("chain-2", chainOf(2));
  Ok &= RunOne("chain-4", chainOf(4));
  Ok &= RunOne("chain-6", chainOf(6));
  Ok &= RunOne("diamond-1", diamondOf(1));
  Ok &= RunOne("diamond-2", diamondOf(2));
  Ok &= RunOne("figure-2", figure2Graph());
  std::printf("%s\n", Table.render().c_str());

  // Multi-worker scaling on the largest instance: sweep the job count
  // from 1 to hardware_concurrency (at least 4 so the sweep is
  // informative on small machines) and verify the results are
  // bit-identical at every job count.
  std::printf("parallel exploration sweep, diamond-3 (largest "
              "instance):\n");
  std::vector<SweepRow> Sweep;
  {
    Heap G = diamondOf(3);
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    GlobalState S0 = spanRootState(Case, G);
    std::vector<unsigned> JobList;
    unsigned MaxJobs = std::max(4u, hardwareJobs());
    for (unsigned J = 1; J <= MaxJobs; J *= 2)
      JobList.push_back(J);
    if (JobList.back() != MaxJobs)
      JobList.push_back(MaxJobs);

    TextTable SweepTable;
    SweepTable.setHeader({"jobs", "configs", "time (ms)", "states/sec",
                          "speedup", "identical"});
    for (unsigned I = 0; I <= 4; ++I)
      SweepTable.setRightAligned(I);

    RunResult Base;
    double BaseMs = 0.0;
    for (unsigned Jobs : JobList) {
      EngineOptions Opts;
      Opts.Ambient = Case.PrivOnly;
      Opts.EnvInterference = false;
      Opts.Defs = &Case.Defs;
      Opts.Jobs = Jobs;
      Timer T;
      RunResult R = explore(Main, spanRootState(Case, G), Opts);
      double Ms = T.elapsedMs();
      Ok &= R.complete();
      if (Jobs == 1) {
        Base = R;
        BaseMs = Ms;
      }
      SweepRow Row;
      Row.Jobs = Jobs;
      Row.Ms = Ms;
      Row.Configs = R.ConfigsExplored;
      Row.StatesPerSec = Ms > 0 ? R.ConfigsExplored * 1000.0 / Ms : 0;
      Row.Speedup = Ms > 0 ? BaseMs / Ms : 1.0;
      Row.Identical = R.Safe == Base.Safe &&
                      R.Exhausted == Base.Exhausted &&
                      R.ConfigsExplored == Base.ConfigsExplored &&
                      sameTerminals(R.Terminals, Base.Terminals);
      Ok &= Row.Identical;
      Sweep.push_back(Row);
      SweepTable.addRow({std::to_string(Jobs),
                         std::to_string(Row.Configs),
                         formatString("%.1f", Row.Ms),
                         formatString("%.0f", Row.StatesPerSec),
                         formatString("%.2fx", Row.Speedup),
                         Row.Identical ? "yes" : "NO"});
    }
    std::printf("%s\n", SweepTable.render().c_str());
  }

  // Partial-order reduction: full vs reduced exploration per instance.
  // The reduction must preserve verdict and terminals exactly; the ratio
  // column is the headline number (diamonds are the commuting-heavy best
  // case, chains the adversarial worst case).
  std::printf("partial-order reduction, full vs reduced exploration:\n");
  std::vector<PorRow> PorRows;
  {
    TextTable PorTable;
    PorTable.setHeader({"graph", "full cfgs", "reduced cfgs", "ratio",
                        "full ms", "reduced ms", "identical"});
    for (unsigned I = 1; I <= 5; ++I)
      PorTable.setRightAligned(I);
    auto RunPor = [&](const char *Name, const Heap &G) {
      ProgRef Main = makeSpanRootProg(Case, Ptr(1));
      EngineOptions Opts;
      Opts.Ambient = Case.PrivOnly;
      Opts.EnvInterference = false;
      Opts.Defs = &Case.Defs;
      Opts.Por = PorMode::Off;
      Timer TF;
      RunResult Full = explore(Main, spanRootState(Case, G), Opts);
      double MsFull = TF.elapsedMs();
      Opts.Por = PorMode::On;
      Timer TR;
      RunResult Red = explore(Main, spanRootState(Case, G), Opts);
      double MsRed = TR.elapsedMs();
      PorRow Row;
      Row.Graph = Name;
      Row.ConfigsFull = Full.ConfigsExplored;
      Row.ConfigsReduced = Red.ConfigsExplored;
      Row.MsFull = MsFull;
      Row.MsReduced = MsRed;
      Row.Identical = Full.Safe == Red.Safe &&
                      Full.Exhausted == Red.Exhausted &&
                      sameTerminals(Full.Terminals, Red.Terminals);
      PorRows.push_back(Row);
      PorTable.addRow(
          {Name, std::to_string(Row.ConfigsFull),
           std::to_string(Row.ConfigsReduced),
           formatString("%.3f", Row.ConfigsFull
                                    ? double(Row.ConfigsReduced) /
                                          double(Row.ConfigsFull)
                                    : 1.0),
           formatString("%.1f", MsFull), formatString("%.1f", MsRed),
           Row.Identical ? "yes" : "NO"});
      return Full.complete() && Red.complete() && Row.Identical;
    };
    Ok &= RunPor("chain-4", chainOf(4));
    Ok &= RunPor("chain-6", chainOf(6));
    Ok &= RunPor("diamond-1", diamondOf(1));
    Ok &= RunPor("diamond-2", diamondOf(2));
    Ok &= RunPor("diamond-3", diamondOf(3));
    Ok &= RunPor("figure-2", figure2Graph());
    std::printf("%s\n", PorTable.render().c_str());
  }

  // Multi-process sharded exploration (src/dist/): shard sweep on
  // diamond-2, checking bit-identity against the in-process run and
  // recording the frontier-exchange volume per shard count.
  std::printf("sharded exploration sweep, diamond-2:\n");
  std::vector<DistRow> DistRows;
  {
    Heap G = diamondOf(2);
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    Opts.Jobs = 1;
    TextTable DistTable;
    DistTable.setHeader({"shards", "configs", "time (ms)", "exchanged",
                         "batches", "bytes", "child rss KB", "identical"});
    for (unsigned I = 0; I <= 6; ++I)
      DistTable.setRightAligned(I);
    Timer TB;
    RunResult Base = explore(Main, spanRootState(Case, G), Opts);
    double BaseMs = TB.elapsedMs();
    Ok &= Base.complete();
    DistRows.push_back(DistRow{1, BaseMs, Base.ConfigsExplored, true, 0, 0,
                               0, 0});
    for (unsigned Shards : {2u, 4u}) {
      dist::FleetStats Before = dist::fleetTotals();
      Timer T;
      RunResult R = dist::distributedExplore(Main, spanRootState(Case, G),
                                             Opts, {}, Shards);
      double Ms = T.elapsedMs();
      dist::FleetStats After = dist::fleetTotals();
      DistRow Row;
      Row.Shards = Shards;
      Row.Ms = Ms;
      Row.Configs = R.ConfigsExplored;
      Row.Identical = R.Safe == Base.Safe &&
                      R.Exhausted == Base.Exhausted &&
                      R.ConfigsExplored == Base.ConfigsExplored &&
                      R.ActionSteps == Base.ActionSteps &&
                      sameTerminals(R.Terminals, Base.Terminals);
      Row.ExchangedConfigs = After.Configs - Before.Configs;
      Row.Batches = After.Messages - Before.Messages;
      Row.Bytes = After.Bytes - Before.Bytes;
      Row.ChildRssKb = After.ChildRssKbMax;
      Ok &= R.complete() && Row.Identical;
      DistRows.push_back(Row);
    }
    for (const DistRow &R : DistRows)
      DistTable.addRow({std::to_string(R.Shards),
                        std::to_string(R.Configs),
                        formatString("%.1f", R.Ms),
                        std::to_string(R.ExchangedConfigs),
                        std::to_string(R.Batches),
                        std::to_string(R.Bytes),
                        std::to_string(R.ChildRssKb),
                        R.Identical ? "yes" : "NO"});
    std::printf("%s\n", DistTable.render().c_str());
  }

  // Randomized simulation past the exhaustive frontier: the same model
  // program, sampled schedules, instances exploration cannot touch.
  std::printf("randomized simulation of span_root beyond the exhaustive "
              "frontier:\n");
  {
    TextTable SimTable;
    SimTable.setHeader({"nodes", "seeds", "spanning trees", "avg steps",
                        "time (ms)"});
    for (unsigned I = 0; I <= 4; ++I)
      SimTable.setRightAligned(I);
    Rng GraphRng(0x600d);
    for (unsigned N : {8u, 16u, 32u, 64u}) {
      Heap G = randomGraph(N, GraphRng, /*ConnectedFromRoot=*/true);
      Timer T;
      unsigned Spanning = 0;
      uint64_t TotalSteps = 0;
      const unsigned Seeds = 20;
      for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
        EngineOptions Opts;
        Opts.Ambient = Case.PrivOnly;
        Opts.EnvInterference = false;
        Opts.Defs = &Case.Defs;
        SimResult Sim = simulate(makeSpanRootProg(Case, Ptr(1)),
                                 spanRootState(Case, G), Opts, Seed);
        TotalSteps += Sim.Steps;
        if (!Sim.Safe || !Sim.Terminated)
          continue;
        const Heap &G2 = Sim.FinalView.self(1).getHeap();
        PtrSet All;
        for (const auto &Cell : G2)
          All.insert(Cell.first);
        Spanning += isTreeIn(G2, Ptr(1), All);
      }
      SimTable.addRow({std::to_string(N), std::to_string(Seeds),
                       std::to_string(Spanning),
                       std::to_string(TotalSteps / Seeds),
                       formatString("%.1f", T.elapsedMs())});
      Ok &= Spanning == Seeds;
    }
    std::printf("%s\n", SimTable.render().c_str());
  }

  // Open vs closed world on a 3-node instance.
  std::printf("open-world (interference) vs closed-world (hide) cost, "
              "3-node graph:\n");
  Heap G3 = chainOf(3);
  {
    Timer T;
    EngineOptions Opts;
    Opts.Ambient = Case.Open;
    Opts.EnvInterference = true;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(Prog::call("span", {Expr::litPtr(Ptr(1))}),
                          spanOpenState(Case, G3, {}), Opts);
    std::printf("  open:   %8llu configs  %7.1f ms\n",
                static_cast<unsigned long long>(R.ConfigsExplored),
                T.elapsedMs());
    Ok &= R.complete();
  }
  {
    Timer T;
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(makeSpanRootProg(Case, Ptr(1)),
                          spanRootState(Case, G3), Opts);
    std::printf("  hidden: %8llu configs  %7.1f ms\n",
                static_cast<unsigned long long>(R.ConfigsExplored),
                T.elapsedMs());
    Ok &= R.complete();
  }

  // Machine-readable trajectory for cross-PR tracking.
  if (std::FILE *F = std::fopen("BENCH_statespace.json", "w")) {
    std::fprintf(F, "{\n  \"bench\": \"statespace\",\n");
    std::fprintf(F, "  \"hardware_concurrency\": %u,\n", hardwareJobs());
    std::fprintf(F, "  \"growth\": [\n");
    for (size_t I = 0; I != Rows.size(); ++I) {
      const GrowthRow &R = Rows[I];
      std::fprintf(F,
                   "    {\"graph\": \"%s\", \"nodes\": %zu, \"configs\": "
                   "%llu, \"action_steps\": %llu, \"terminals\": %zu, "
                   "\"ms\": %.2f, \"visited_bytes\": %llu}%s\n",
                   R.Graph.c_str(), R.Nodes,
                   static_cast<unsigned long long>(R.Configs),
                   static_cast<unsigned long long>(R.ActionSteps),
                   R.Terminals, R.Ms,
                   static_cast<unsigned long long>(R.VisitedBytes),
                   I + 1 == Rows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"jobs_sweep\": {\"graph\": \"diamond-3\", "
                    "\"runs\": [\n");
    for (size_t I = 0; I != Sweep.size(); ++I) {
      const SweepRow &R = Sweep[I];
      std::fprintf(F,
                   "    {\"jobs\": %u, \"ms\": %.2f, \"configs\": %llu, "
                   "\"states_per_sec\": %.0f, \"speedup\": %.3f, "
                   "\"identical\": %s}%s\n",
                   R.Jobs, R.Ms,
                   static_cast<unsigned long long>(R.Configs),
                   R.StatesPerSec, R.Speedup,
                   R.Identical ? "true" : "false",
                   I + 1 == Sweep.size() ? "" : ",");
    }
    std::fprintf(F, "  ]},\n");
    std::fprintf(F, "  \"por\": [\n");
    for (size_t I = 0; I != PorRows.size(); ++I) {
      const PorRow &R = PorRows[I];
      std::fprintf(F,
                   "    {\"graph\": \"%s\", \"configs_full\": %llu, "
                   "\"configs_reduced\": %llu, \"ratio\": %.3f, "
                   "\"ms_full\": %.2f, \"ms_reduced\": %.2f, "
                   "\"identical\": %s}%s\n",
                   R.Graph.c_str(),
                   static_cast<unsigned long long>(R.ConfigsFull),
                   static_cast<unsigned long long>(R.ConfigsReduced),
                   R.ConfigsFull
                       ? double(R.ConfigsReduced) / double(R.ConfigsFull)
                       : 1.0,
                   R.MsFull, R.MsReduced, R.Identical ? "true" : "false",
                   I + 1 == PorRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"dist\": {\"graph\": \"diamond-2\", \"runs\": [\n");
    for (size_t I = 0; I != DistRows.size(); ++I) {
      const DistRow &R = DistRows[I];
      std::fprintf(F,
                   "    {\"shards\": %u, \"ms\": %.2f, \"configs\": %llu, "
                   "\"exchanged_configs\": %llu, \"batches\": %llu, "
                   "\"bytes\": %llu, \"child_rss_kb\": %llu, "
                   "\"identical\": %s}%s\n",
                   R.Shards, R.Ms,
                   static_cast<unsigned long long>(R.Configs),
                   static_cast<unsigned long long>(R.ExchangedConfigs),
                   static_cast<unsigned long long>(R.Batches),
                   static_cast<unsigned long long>(R.Bytes),
                   static_cast<unsigned long long>(R.ChildRssKb),
                   R.Identical ? "true" : "false",
                   I + 1 == DistRows.size() ? "" : ",");
    }
    std::fprintf(F, "  ]},\n");
    InternStats IS = internStats();
    std::fprintf(F,
                 "  \"memory\": {\"peak_rss_kb\": %llu, "
                 "\"children_rss_kb\": %llu, "
                 "\"peak_visited_configs\": %llu, "
                 "\"peak_visited_bytes\": %llu, "
                 "\"intern_requests\": %llu, \"intern_nodes\": %llu, "
                 "\"dedup_ratio\": %.3f}\n",
                 static_cast<unsigned long long>(peakRssKb()),
                 static_cast<unsigned long long>(childPeakRssKb()),
                 static_cast<unsigned long long>(peakVisitedNodes()),
                 static_cast<unsigned long long>(peakVisitedBytes()),
                 static_cast<unsigned long long>(IS.totalRequests()),
                 static_cast<unsigned long long>(IS.totalNodes()),
                 IS.dedupRatio());
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote BENCH_statespace.json\n");
    std::printf("peak RSS: %llu KB; peak visited set: %llu configs, "
                "%llu bytes; intern dedup %.2fx\n",
                static_cast<unsigned long long>(peakRssKb()),
                static_cast<unsigned long long>(peakVisitedNodes()),
                static_cast<unsigned long long>(peakVisitedBytes()),
                IS.dedupRatio());
  }
  return Ok ? 0 : 1;
}
