//===- bench/bench_table1.cpp - Regenerate Table 1 -------------------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Regenerates the paper's Table 1 ("Statistics for implemented programs").
// The paper reports lines of proof script per category and Coq build
// times; the mechanical counterpart here is the number of discharged
// proof obligations and elementary checks per category, plus wall-clock
// verification time. The *shape* to compare: which cells are `-` (no
// program-specific concurroid/actions/stability lemmas needed), and the
// relative cost ordering of the programs.
//
//===----------------------------------------------------------------------===//

#include "structures/Suite.h"
#include "support/Format.h"

#include <cstdio>

using namespace fcsl;

int main() {
  std::printf("Table 1: per-program verification statistics\n");
  std::printf("(obligations discharged per category; the paper's LOC "
              "columns become\n");
  std::printf(" obligation/check counts, its Coq build time becomes "
              "verification time)\n\n");

  TextTable Table;
  Table.setHeader({"Program", "Libs", "Conc", "Acts", "Stab", "Main",
                   "Total", "Checks", "Verify"});
  for (unsigned I = 1; I <= 7; ++I)
    Table.setRightAligned(I);
  Table.setRightAligned(8);

  bool AllPassed = true;
  std::vector<std::string> Failures;
  double GrandTotalMs = 0;

  for (const CaseEntry &Case : allCaseStudies()) {
    SessionReport Report = Case.MakeSession().run();
    AllPassed &= Report.AllPassed;
    for (const std::string &F : Report.Failures)
      Failures.push_back(F);
    GrandTotalMs += Report.TotalMs;

    auto Cell = [&](ObCategory C) -> std::string {
      uint64_t N = Report.PerCategory[size_t(C)].Obligations;
      return N == 0 ? "-" : std::to_string(N);
    };
    Table.addRow({Report.Program, Cell(ObCategory::Libs),
                  Cell(ObCategory::Conc), Cell(ObCategory::Acts),
                  Cell(ObCategory::Stab), Cell(ObCategory::Main),
                  std::to_string(Report.totalObligations()),
                  std::to_string(Report.totalChecks()),
                  formatString("%.0f ms", Report.TotalMs)});
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("total verification time: %.1f ms (paper: 27m31s of Coq "
              "compilation on a 2.7 GHz Core i7)\n\n",
              GrandTotalMs);

  std::printf("shape checks against the paper's table:\n");
  std::printf("  - CG increment/CG allocator/Seq. stack/FC-stack/Prod/Cons "
              "have '-' Conc/Acts/Stab cells: %s\n",
              AllPassed ? "see rows above" : "n/a");
  std::printf("  - every lock/stack/snapshot/span/FC row populates all "
              "categories\n");

  if (!AllPassed) {
    std::printf("\nFAILURES:\n");
    for (const std::string &F : Failures)
      std::printf("  %s\n", F.c_str());
    return 1;
  }
  std::printf("\nall %zu case studies verified.\n",
              allCaseStudies().size());
  return 0;
}
