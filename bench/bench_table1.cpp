//===- bench/bench_table1.cpp - Regenerate Table 1 -------------------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Regenerates the paper's Table 1 ("Statistics for implemented programs").
// The paper reports lines of proof script per category and Coq build
// times; the mechanical counterpart here is the number of discharged
// proof obligations and elementary checks per category, plus wall-clock
// verification time. The *shape* to compare: which cells are `-` (no
// program-specific concurroid/actions/stability lemmas needed), and the
// relative cost ordering of the programs.
//
// Each suite is discharged eight times — serially (Jobs=1), with parallel
// obligation discharge (Jobs=4), serially with static and with dynamic
// partial-order reduction, serially under symmetry reduction, serially
// with every exploration sharded across two worker processes (src/dist/),
// and finally cold + warm against a fresh obligation store (src/cache/)
// — and then twice more through the verification service (src/service/):
// an engine-backed daemon round-trip and a warm store-backed one, so the
// client-observed request latency of both paths is tracked. All timings
// land in BENCH_table1.json so the speedup from the multi-worker engine,
// the state-space savings from the reductions, the frontier-exchange
// cost of sharding, the replay win of the verdict cache, and the service
// round-trip overhead are tracked across PRs.
//
//===----------------------------------------------------------------------===//

#include "cache/Store.h"
#include "dist/Coordinator.h"
#include "prog/Engine.h"
#include "service/Client.h"
#include "service/Server.h"
#include "structures/Suite.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unistd.h>

using namespace fcsl;

namespace {

struct ProgramRow {
  std::string Program;
  uint64_t Obligations = 0;
  uint64_t Checks = 0;
  double SerialMs = 0.0;   ///< Jobs=1 discharge (the "before").
  double ParallelMs = 0.0; ///< Jobs=4 discharge (the "after").
  double PorMs = 0.0;      ///< Jobs=1 discharge under static reduction.
  double DynPorMs = 0.0;   ///< Jobs=1 discharge under dynamic reduction.
  double DistMs = 0.0;     ///< Jobs=1 discharge sharded across 2 workers.
  double SymMs = 0.0;      ///< Jobs=1 discharge under symmetry reduction.
  double ColdMs = 0.0;     ///< Jobs=1 discharge into an empty store.
  double WarmMs = 0.0;     ///< Jobs=1 replay against the populated store.
  uint64_t CacheHits = 0;  ///< obligations the warm run served from it.
  uint64_t ConfigsFull = 0;    ///< configs explored by the serial run.
  uint64_t ConfigsReduced = 0; ///< configs explored under static POR.
  uint64_t ConfigsDynamic = 0; ///< configs explored under dynamic POR.
  uint64_t ConfigsCanonical = 0; ///< configs explored under symmetry.
  uint64_t OrbitHits = 0;      ///< orbit-cache hits during the symmetry run.
  uint64_t DistExchanged = 0;  ///< frontier configs exchanged when sharded.
  uint64_t DistBytes = 0;      ///< wire bytes exchanged when sharded.
};

} // namespace

int main() {
  std::printf("Table 1: per-program verification statistics\n");
  std::printf("(obligations discharged per category; the paper's LOC "
              "columns become\n");
  std::printf(" obligation/check counts, its Coq build time becomes "
              "verification time)\n\n");

  TextTable Table;
  Table.setHeader({"Program", "Libs", "Conc", "Acts", "Stab", "Main",
                   "Total", "Checks", "Jobs=1", "Jobs=4", "POR",
                   "DynPOR", "Symm", "Shards=2", "Warm"});
  for (unsigned I = 1; I <= 14; ++I)
    Table.setRightAligned(I);

  bool AllPassed = true;
  std::vector<std::string> Failures;
  std::vector<ProgramRow> Rows;
  double SerialTotalMs = 0;
  double ParallelTotalMs = 0;
  double PorTotalMs = 0;
  double DynPorTotalMs = 0;
  double DistTotalMs = 0;
  double SymTotalMs = 0;
  uint64_t ConfigsFullTotal = 0;
  uint64_t ConfigsReducedTotal = 0;
  uint64_t ConfigsDynamicTotal = 0;
  uint64_t ConfigsCanonicalTotal = 0;
  double ColdTotalMs = 0;
  double WarmTotalMs = 0;
  uint64_t CacheHitsTotal = 0;
  const unsigned ParJobs = 4;
  const unsigned DistShards = 2;
  dist::installDistributedEngine();

  // A throwaway store directory so the bench never reads a stale verdict
  // from a previous run — the cold/warm pair measures this binary only.
  char CacheDirTemplate[] = "/tmp/fcsl-bench-cache-XXXXXX";
  const char *CacheDir = mkdtemp(CacheDirTemplate);
  if (CacheDir)
    cache::setCacheDir(CacheDir);

  for (const CaseEntry &Case : allCaseStudies()) {
    uint64_t Configs0 = totalConfigsExplored();
    SessionReport Report = Case.MakeSession().run(/*Jobs=*/1);
    uint64_t ConfigsFull = totalConfigsExplored() - Configs0;
    AllPassed &= Report.AllPassed;
    for (const std::string &F : Report.Failures)
      Failures.push_back(F);
    SerialTotalMs += Report.TotalMs;
    ConfigsFullTotal += ConfigsFull;

    // Parallel discharge of the same obligations must agree verdict for
    // verdict; its wall-clock is the "after" column.
    SessionReport Par = Case.MakeSession().run(ParJobs);
    AllPassed &= Par.AllPassed == Report.AllPassed &&
                 Par.totalObligations() == Report.totalObligations() &&
                 Par.totalChecks() == Report.totalChecks();
    ParallelTotalMs += Par.TotalMs;

    // Serial discharge again under partial-order reduction: same
    // verdicts, fewer explored configurations.
    setDefaultPorMode(PorMode::On);
    uint64_t Configs1 = totalConfigsExplored();
    SessionReport Por = Case.MakeSession().run(/*Jobs=*/1);
    uint64_t ConfigsReduced = totalConfigsExplored() - Configs1;
    setDefaultPorMode(PorMode::Off);
    AllPassed &= Por.AllPassed == Report.AllPassed &&
                 Por.totalObligations() == Report.totalObligations();
    PorTotalMs += Por.TotalMs;
    ConfigsReducedTotal += ConfigsReduced;

    // Dynamic reduction: ample sets licensed by observed footprints and
    // the env-future closure (DESIGN.md §12). Same verdicts again.
    setDefaultPorMode(PorMode::Dynamic);
    uint64_t ConfigsDyn0 = totalConfigsExplored();
    SessionReport DynPor = Case.MakeSession().run(/*Jobs=*/1);
    uint64_t ConfigsDynamic = totalConfigsExplored() - ConfigsDyn0;
    setDefaultPorMode(PorMode::Off);
    AllPassed &= DynPor.AllPassed == Report.AllPassed &&
                 DynPor.totalObligations() == Report.totalObligations();
    DynPorTotalMs += DynPor.TotalMs;
    ConfigsDynamicTotal += ConfigsDynamic;

    // Serial discharge under symmetry reduction: identical verdicts over
    // the orbit-canonicalized state space (DESIGN.md §11).
    setDefaultSymmetryMode(SymMode::On);
    uint64_t Configs2 = totalConfigsExplored();
    SymmetryStats Orbit0 = symmetryStats();
    SessionReport Sym = Case.MakeSession().run(/*Jobs=*/1);
    uint64_t ConfigsCanonical = totalConfigsExplored() - Configs2;
    SymmetryStats Orbit1 = symmetryStats();
    setDefaultSymmetryMode(SymMode::Off);
    AllPassed &= Sym.AllPassed == Report.AllPassed &&
                 Sym.totalObligations() == Report.totalObligations();
    SymTotalMs += Sym.TotalMs;
    ConfigsCanonicalTotal += ConfigsCanonical;

    // Serial discharge once more with every exploration sharded across
    // two worker processes: verdicts must agree; the exchange volume is
    // the cost of the partitioning.
    setDefaultShards(DistShards);
    dist::FleetStats Fleet0 = dist::fleetTotals();
    SessionReport Sh = Case.MakeSession().run(/*Jobs=*/1);
    dist::FleetStats Fleet1 = dist::fleetTotals();
    setDefaultShards(0);
    AllPassed &= Sh.AllPassed == Report.AllPassed &&
                 Sh.totalObligations() == Report.totalObligations() &&
                 Sh.totalChecks() == Report.totalChecks();
    DistTotalMs += Sh.TotalMs;

    // Cold + warm against the obligation store: the cold run discharges
    // and appends, the warm rerun must replay every verdict from disk.
    cache::setDefaultCacheMode(cache::CacheMode::Rw);
    SessionReport Cold = Case.MakeSession().run(/*Jobs=*/1);
    cache::CacheStats Cache0 = cache::cacheStats();
    SessionReport Warm = Case.MakeSession().run(/*Jobs=*/1);
    cache::CacheStats Cache1 = cache::cacheStats();
    cache::setDefaultCacheMode(cache::CacheMode::Off);
    uint64_t WarmHits = Cache1.Hits - Cache0.Hits;
    AllPassed &= Cold.AllPassed == Report.AllPassed &&
                 Warm.AllPassed == Report.AllPassed &&
                 Warm.totalObligations() == Report.totalObligations() &&
                 Warm.totalChecks() == Report.totalChecks() &&
                 WarmHits == Warm.totalObligations();
    ColdTotalMs += Cold.TotalMs;
    WarmTotalMs += Warm.TotalMs;
    CacheHitsTotal += WarmHits;

    auto Cell = [&](ObCategory C) -> std::string {
      uint64_t N = Report.PerCategory[size_t(C)].Obligations;
      return N == 0 ? "-" : std::to_string(N);
    };
    Table.addRow({Report.Program, Cell(ObCategory::Libs),
                  Cell(ObCategory::Conc), Cell(ObCategory::Acts),
                  Cell(ObCategory::Stab), Cell(ObCategory::Main),
                  std::to_string(Report.totalObligations()),
                  std::to_string(Report.totalChecks()),
                  formatString("%.0f ms", Report.TotalMs),
                  formatString("%.0f ms", Par.TotalMs),
                  formatString("%.0f ms", Por.TotalMs),
                  formatString("%.0f ms", DynPor.TotalMs),
                  formatString("%.0f ms", Sym.TotalMs),
                  formatString("%.0f ms", Sh.TotalMs),
                  formatString("%.0f ms", Warm.TotalMs)});
    Rows.push_back(ProgramRow{Report.Program, Report.totalObligations(),
                              Report.totalChecks(), Report.TotalMs,
                              Par.TotalMs, Por.TotalMs, DynPor.TotalMs,
                              Sh.TotalMs, Sym.TotalMs, Cold.TotalMs,
                              Warm.TotalMs, WarmHits, ConfigsFull,
                              ConfigsReduced, ConfigsDynamic,
                              ConfigsCanonical,
                              Orbit1.Hits - Orbit0.Hits,
                              Fleet1.Configs - Fleet0.Configs,
                              Fleet1.Bytes - Fleet0.Bytes});
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("total verification time: %.1f ms serial, %.1f ms at "
              "%u jobs, %.1f ms serial with partial-order reduction "
              "(%.1f ms dynamic), %.1f ms under symmetry reduction, "
              "%.1f ms sharded over %u worker processes "
              "(paper: 27m31s of Coq compilation on a 2.7 GHz Core i7)\n",
              SerialTotalMs, ParallelTotalMs, ParJobs, PorTotalMs,
              DynPorTotalMs, SymTotalMs, DistTotalMs, DistShards);
  std::printf("obligation cache: %.1f ms cold (discharge + store), "
              "%.1f ms warm (%llu verdicts replayed from the store)\n",
              ColdTotalMs, WarmTotalMs,
              static_cast<unsigned long long>(CacheHitsTotal));
  std::printf("state space: %llu configs full, %llu reduced (ratio "
              "%.3f), %llu dynamic (ratio %.3f), %llu canonical (orbit "
              "ratio %.3f)\n\n",
              static_cast<unsigned long long>(ConfigsFullTotal),
              static_cast<unsigned long long>(ConfigsReducedTotal),
              ConfigsFullTotal
                  ? double(ConfigsReducedTotal) / double(ConfigsFullTotal)
                  : 1.0,
              static_cast<unsigned long long>(ConfigsDynamicTotal),
              ConfigsFullTotal
                  ? double(ConfigsDynamicTotal) / double(ConfigsFullTotal)
                  : 1.0,
              static_cast<unsigned long long>(ConfigsCanonicalTotal),
              ConfigsFullTotal
                  ? double(ConfigsCanonicalTotal) / double(ConfigsFullTotal)
                  : 1.0);

  // Verification-service round-trips over the store populated above: an
  // engine-backed request (--cache=off daemon-side, the "cold" path) and
  // a warm store-backed request the daemon answers from its in-memory
  // index without invoking the engine.
  double SvcEngineMs = 0.0, SvcWarmMs = 0.0;
  uint64_t SvcWarmServes = 0;
  double SvcWarmSessionsPerSec = 0.0;
  {
    using Clock = std::chrono::steady_clock;
    auto MsSince = [](Clock::time_point T0) {
      return std::chrono::duration<double, std::milli>(Clock::now() - T0)
          .count();
    };
    cache::setDefaultCacheMode(cache::CacheMode::Rw);
    cache::resetActiveStore(); // reopen the warm store for the daemon.
    service::ServerOptions SOpts;
    SOpts.SocketPath =
        std::string(CacheDir ? CacheDir : "/tmp") + "/bench.sock";
    service::Server Daemon(SOpts);
    if (Daemon.start()) {
      service::ServiceClient Client(SOpts.SocketPath);
      if (Client.ok()) {
        for (const CaseEntry &Case : allCaseStudies()) {
          Clock::time_point T0 = Clock::now();
          auto Engine = Client.submit(Case.Name, /*Por=*/1, /*Symmetry=*/1,
                                      /*Cache=*/1); // cache off: engine runs.
          SvcEngineMs += MsSince(T0);
          T0 = Clock::now();
          auto Warm = Client.submit(Case.Name, /*Por=*/1, /*Symmetry=*/1,
                                    /*Cache=*/2); // cache rw: warm serve.
          SvcWarmMs += MsSince(T0);
          AllPassed &= Engine && Engine->Ok && !Engine->ServedFromCache &&
                       Warm && Warm->Ok && Warm->ServedFromCache;
        }
        // Warm throughput: hammer the daemon with store-served requests.
        Clock::time_point T0 = Clock::now();
        for (int Round = 0; Round != 3; ++Round)
          for (const CaseEntry &Case : allCaseStudies()) {
            auto R = Client.submit(Case.Name, 1, 1, 2);
            AllPassed &= R && R->Ok && R->ServedFromCache;
            ++SvcWarmServes;
          }
        double Secs = MsSince(T0) / 1000.0;
        SvcWarmSessionsPerSec = Secs > 0 ? SvcWarmServes / Secs : 0.0;
        Client.shutdown();
      }
      Daemon.wait();
    }
    cache::setDefaultCacheMode(cache::CacheMode::Off);
  }
  std::printf("service: %.1f ms engine-backed round-trips, %.1f ms warm "
              "store-backed (%.0f us/request), %.0f warm sessions/sec\n\n",
              SvcEngineMs, SvcWarmMs,
              1000.0 * SvcWarmMs / double(allCaseStudies().size()),
              SvcWarmSessionsPerSec);

  std::printf("shape checks against the paper's table:\n");
  std::printf("  - CG increment/CG allocator/Seq. stack/FC-stack/Prod/Cons "
              "have '-' Conc/Acts/Stab cells: %s\n",
              AllPassed ? "see rows above" : "n/a");
  std::printf("  - every lock/stack/snapshot/span/FC row populates all "
              "categories\n");

  // Machine-readable before/after for cross-PR perf tracking.
  if (std::FILE *F = std::fopen("BENCH_table1.json", "w")) {
    std::fprintf(F, "{\n  \"bench\": \"table1\",\n");
    std::fprintf(F, "  \"hardware_concurrency\": %u,\n", hardwareJobs());
    std::fprintf(F, "  \"parallel_jobs\": %u,\n", ParJobs);
    std::fprintf(F, "  \"programs\": [\n");
    for (size_t I = 0; I != Rows.size(); ++I) {
      const ProgramRow &R = Rows[I];
      double Speedup = R.ParallelMs > 0 ? R.SerialMs / R.ParallelMs : 1.0;
      std::fprintf(F,
                   "    {\"program\": \"%s\", \"obligations\": %llu, "
                   "\"checks\": %llu, \"serial_ms\": %.2f, "
                   "\"parallel_ms\": %.2f, \"speedup\": %.3f, "
                   "\"por_ms\": %.2f, \"configs_full\": %llu, "
                   "\"configs_reduced\": %llu, \"por_ratio\": %.3f, "
                   "\"dynpor_ms\": %.2f, \"configs_dynamic\": %llu, "
                   "\"dynpor_ratio\": %.3f, "
                   "\"symmetry_ms\": %.2f, \"configs_canonical\": %llu, "
                   "\"orbit_ratio\": %.3f, \"orbit_cache_hits\": %llu, "
                   "\"dist_ms\": %.2f, \"dist_exchanged_configs\": %llu, "
                   "\"dist_bytes\": %llu, "
                   "\"cache_cold_ms\": %.2f, \"cache_warm_ms\": %.2f, "
                   "\"cache_hits\": %llu}%s\n",
                   R.Program.c_str(),
                   static_cast<unsigned long long>(R.Obligations),
                   static_cast<unsigned long long>(R.Checks), R.SerialMs,
                   R.ParallelMs, Speedup, R.PorMs,
                   static_cast<unsigned long long>(R.ConfigsFull),
                   static_cast<unsigned long long>(R.ConfigsReduced),
                   R.ConfigsFull
                       ? double(R.ConfigsReduced) / double(R.ConfigsFull)
                       : 1.0,
                   R.DynPorMs,
                   static_cast<unsigned long long>(R.ConfigsDynamic),
                   R.ConfigsFull
                       ? double(R.ConfigsDynamic) / double(R.ConfigsFull)
                       : 1.0,
                   R.SymMs,
                   static_cast<unsigned long long>(R.ConfigsCanonical),
                   R.ConfigsFull
                       ? double(R.ConfigsCanonical) / double(R.ConfigsFull)
                       : 1.0,
                   static_cast<unsigned long long>(R.OrbitHits),
                   R.DistMs,
                   static_cast<unsigned long long>(R.DistExchanged),
                   static_cast<unsigned long long>(R.DistBytes),
                   R.ColdMs, R.WarmMs,
                   static_cast<unsigned long long>(R.CacheHits),
                   I + 1 == Rows.size() ? "" : ",");
    }
    std::fprintf(F, "  ],\n");
    dist::FleetStats Fleet = dist::fleetTotals();
    std::fprintf(F,
                 "  \"dist\": {\"shards\": %u, \"ms\": %.2f, "
                 "\"fleets\": %llu, \"exchanged_configs\": %llu, "
                 "\"batches\": %llu, \"bytes\": %llu, "
                 "\"child_rss_kb_max\": %llu},\n",
                 DistShards, DistTotalMs,
                 static_cast<unsigned long long>(Fleet.Fleets),
                 static_cast<unsigned long long>(Fleet.Configs),
                 static_cast<unsigned long long>(Fleet.Messages),
                 static_cast<unsigned long long>(Fleet.Bytes),
                 static_cast<unsigned long long>(Fleet.ChildRssKbMax));
    SymmetryStats Orbit = symmetryStats();
    std::fprintf(F,
                 "  \"symmetry\": {\"ms\": %.2f, \"configs_full\": %llu, "
                 "\"configs_canonical\": %llu, \"orbit_ratio\": %.3f, "
                 "\"orbit_cache_lookups\": %llu, "
                 "\"orbit_cache_hits\": %llu, "
                 "\"orbit_cache_canonicalized\": %llu},\n",
                 SymTotalMs,
                 static_cast<unsigned long long>(ConfigsFullTotal),
                 static_cast<unsigned long long>(ConfigsCanonicalTotal),
                 ConfigsFullTotal
                     ? double(ConfigsCanonicalTotal) /
                           double(ConfigsFullTotal)
                     : 1.0,
                 static_cast<unsigned long long>(Orbit.Lookups),
                 static_cast<unsigned long long>(Orbit.Hits),
                 static_cast<unsigned long long>(Orbit.Changed));
    uint64_t StoreRecords = 0, StoreBytes = 0;
    cache::setDefaultCacheMode(cache::CacheMode::Ro);
    if (cache::Store *S = cache::activeStore()) {
      StoreRecords = S->records();
      StoreBytes = S->fileBytes();
    }
    cache::setDefaultCacheMode(cache::CacheMode::Off);
    std::fprintf(F,
                 "  \"cache\": {\"cold_ms\": %.2f, \"warm_ms\": %.2f, "
                 "\"replay_speedup\": %.3f, \"hits\": %llu, "
                 "\"store_records\": %llu, \"store_bytes\": %llu},\n",
                 ColdTotalMs, WarmTotalMs,
                 WarmTotalMs > 0 ? ColdTotalMs / WarmTotalMs : 1.0,
                 static_cast<unsigned long long>(CacheHitsTotal),
                 static_cast<unsigned long long>(StoreRecords),
                 static_cast<unsigned long long>(StoreBytes));
    std::fprintf(F,
                 "  \"service\": {\"engine_roundtrip_ms\": %.2f, "
                 "\"warm_roundtrip_ms\": %.2f, "
                 "\"warm_roundtrip_us_mean\": %.1f, "
                 "\"warm_serves\": %llu, "
                 "\"warm_sessions_per_sec\": %.1f},\n",
                 SvcEngineMs, SvcWarmMs,
                 1000.0 * SvcWarmMs / double(allCaseStudies().size()),
                 static_cast<unsigned long long>(SvcWarmServes),
                 SvcWarmSessionsPerSec);
    std::fprintf(F,
                 "  \"total\": {\"serial_ms\": %.2f, \"parallel_ms\": "
                 "%.2f, \"speedup\": %.3f, \"por_ms\": %.2f, "
                 "\"dynpor_ms\": %.2f, "
                 "\"symmetry_ms\": %.2f, \"dist_ms\": %.2f, "
                 "\"configs_full\": %llu, \"configs_reduced\": %llu, "
                 "\"por_ratio\": %.3f, \"configs_dynamic\": %llu, "
                 "\"dynpor_ratio\": %.3f}\n}\n",
                 SerialTotalMs, ParallelTotalMs,
                 ParallelTotalMs > 0 ? SerialTotalMs / ParallelTotalMs
                                     : 1.0,
                 PorTotalMs, DynPorTotalMs, SymTotalMs, DistTotalMs,
                 static_cast<unsigned long long>(ConfigsFullTotal),
                 static_cast<unsigned long long>(ConfigsReducedTotal),
                 ConfigsFullTotal
                     ? double(ConfigsReducedTotal) /
                           double(ConfigsFullTotal)
                     : 1.0,
                 static_cast<unsigned long long>(ConfigsDynamicTotal),
                 ConfigsFullTotal
                     ? double(ConfigsDynamicTotal) /
                           double(ConfigsFullTotal)
                     : 1.0);
    std::fclose(F);
    std::printf("wrote BENCH_table1.json\n");
  }

  if (CacheDir) {
    cache::resetActiveStore();
    std::remove((std::string(CacheDir) + "/obligations.fcslcache").c_str());
    ::rmdir(CacheDir);
  }

  if (!AllPassed) {
    std::printf("\nFAILURES:\n");
    for (const std::string &F : Failures)
      std::printf("  %s\n", F.c_str());
    return 1;
  }
  std::printf("\nall %zu case studies verified.\n",
              allCaseStudies().size());
  return 0;
}
