//===- tools/fcsl-serve.cpp - Verification service daemon ------------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// The long-lived verification server (DESIGN.md §15):
//
//   fcsl-serve --socket /tmp/fcsl.sock [--workers N] [--por MODE] ...
//
// One process keeps the interned arenas and the obligation-store index
// warm across requests; fcsl-client submits sessions by name and a fully
// warm session is answered in microseconds without invoking the engine.
// The daemon exits on a client Shutdown frame or on SIGINT/SIGTERM, both
// via the same graceful drain.
//
//===----------------------------------------------------------------------===//

#include "cache/Store.h"
#include "prog/Engine.h"
#include "service/Server.h"
#include "support/ThreadPool.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <thread>
#include <unistd.h>

using namespace fcsl;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fcsl-serve --socket PATH [options]\n"
               "  --socket PATH        Unix-domain socket to listen on "
               "(required)\n"
               "  --workers N          session worker threads (default 2)\n"
               "  --queue N            queued-session bound; submits beyond "
               "it are\n"
               "                       rejected loudly (default 64)\n"
               "  --jobs N             default discharge threads per session "
               "(0 = all\n"
               "                       hardware threads; default from "
               "FCSL_JOBS, else 1)\n"
               "  --por off|on|dynamic|check|check-dynamic\n"
               "  --symmetry off|on|check\n"
               "  --cache off|rw|ro|check\n"
               "                       the daemon-default modes; a submit "
               "with Default\n"
               "                       mode bytes inherits them, an explicit "
               "submit mode\n"
               "                       overrides per request\n");
  return 2;
}

/// The self-pipe the signal handlers write to; poll(2) in main turns an
/// async signal into a synchronous graceful drain.
int SigPipe[2] = {-1, -1};

void onSignal(int) {
  uint8_t B = 1;
  ssize_t Ignored = ::write(SigPipe[1], &B, 1);
  (void)Ignored;
}

} // namespace

int main(int Argc, char **Argv) {
  service::ServerOptions Opts;
  auto ParseUnsigned = [](const char *Text, long Min, long &Out) {
    char *End = nullptr;
    Out = std::strtol(Text, &End, 10);
    return End != Text && *End == '\0' && Out >= Min;
  };
  for (int I = 1; I < Argc; ++I) {
    long N = 0;
    if (std::strcmp(Argv[I], "--socket") == 0 && I + 1 < Argc) {
      Opts.SocketPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--workers") == 0 && I + 1 < Argc &&
               ParseUnsigned(Argv[++I], 1, N)) {
      Opts.Workers = static_cast<unsigned>(N);
    } else if (std::strcmp(Argv[I], "--queue") == 0 && I + 1 < Argc &&
               ParseUnsigned(Argv[++I], 1, N)) {
      Opts.QueueCapacity = static_cast<size_t>(N);
    } else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc &&
               ParseUnsigned(Argv[++I], 0, N)) {
      Opts.Jobs = static_cast<unsigned>(N);
      setDefaultJobs(static_cast<unsigned>(N));
    } else if (std::strcmp(Argv[I], "--por") == 0 && I + 1 < Argc) {
      const char *Mode = Argv[++I];
      if (std::strcmp(Mode, "off") == 0)
        setDefaultPorMode(PorMode::Off);
      else if (std::strcmp(Mode, "on") == 0)
        setDefaultPorMode(PorMode::On);
      else if (std::strcmp(Mode, "dynamic") == 0)
        setDefaultPorMode(PorMode::Dynamic);
      else if (std::strcmp(Mode, "check") == 0)
        setDefaultPorMode(PorMode::Check);
      else if (std::strcmp(Mode, "check-dynamic") == 0)
        setDefaultPorMode(PorMode::CheckDynamic);
      else
        return usage();
    } else if (std::strcmp(Argv[I], "--symmetry") == 0 && I + 1 < Argc) {
      const char *Mode = Argv[++I];
      if (std::strcmp(Mode, "off") == 0)
        setDefaultSymmetryMode(SymMode::Off);
      else if (std::strcmp(Mode, "on") == 0)
        setDefaultSymmetryMode(SymMode::On);
      else if (std::strcmp(Mode, "check") == 0)
        setDefaultSymmetryMode(SymMode::Check);
      else
        return usage();
    } else if (std::strcmp(Argv[I], "--cache") == 0 && I + 1 < Argc) {
      cache::CacheMode M;
      if (!cache::parseCacheMode(Argv[++I], M))
        return usage();
      cache::setDefaultCacheMode(M);
    } else {
      return usage();
    }
  }
  if (Opts.SocketPath.empty())
    return usage();

  if (::pipe(SigPipe) != 0) {
    std::perror("fcsl-serve: pipe");
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  service::Server Server(Opts);
  if (!Server.start()) {
    std::fprintf(stderr, "fcsl-serve: cannot listen on %s\n",
                 Opts.SocketPath.c_str());
    return 1;
  }
  std::fprintf(stderr, "fcsl-serve: listening on %s (%u workers)\n",
               Server.endpoint().c_str(), Opts.Workers);

  // Wait for either a signal (self-pipe) or a client-driven shutdown (the
  // waiter thread's pipe write), then drain and exit cleanly either way.
  int DonePipe[2];
  if (::pipe(DonePipe) != 0) {
    std::perror("fcsl-serve: pipe");
    return 1;
  }
  std::thread Waiter([&Server, &DonePipe] {
    Server.wait();
    uint8_t B = 1;
    ssize_t Ignored = ::write(DonePipe[1], &B, 1);
    (void)Ignored;
  });
  pollfd Fds[2] = {{SigPipe[0], POLLIN, 0}, {DonePipe[0], POLLIN, 0}};
  while (::poll(Fds, 2, -1) < 0 && errno == EINTR)
    ;
  if (Fds[0].revents & POLLIN) {
    std::fprintf(stderr, "fcsl-serve: signal received, draining\n");
    Server.requestShutdown();
  }
  Waiter.join();

  const service::DaemonStats &S = Server.stats();
  std::fprintf(stderr,
               "fcsl-serve: served %llu requests (%llu engine sessions, "
               "%llu from cache), exiting\n",
               static_cast<unsigned long long>(S.RequestsServed.load()),
               static_cast<unsigned long long>(S.SessionsRun.load()),
               static_cast<unsigned long long>(S.ServedFromCache.load()));
  return 0;
}
