//===- tools/fcsl-client.cpp - Verification service client -----------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Submits verification sessions to a running fcsl-serve daemon:
//
//   fcsl-client --socket /tmp/fcsl.sock verify "Ticketed lock"
//   fcsl-client --socket /tmp/fcsl.sock --progress verify all
//   fcsl-client --socket /tmp/fcsl.sock stats
//   fcsl-client --socket /tmp/fcsl.sock shutdown
//
// The printed report is renderSessionReport over the daemon's wire
// SessionReport — byte-identical in shape to a direct `fcsl-verify
// verify` run, so the two outputs diff cleanly (modulo timings).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "spec/Session.h"
#include "structures/Suite.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace fcsl;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: fcsl-client --socket PATH [options] <command>\n"
      "  verify <name|all>    submit one (or every) registered session\n"
      "  stats                print the daemon's serving counters\n"
      "  shutdown             drain the daemon and wait for its ack\n"
      "\n"
      "  --por off|on|dynamic|check|check-dynamic\n"
      "  --symmetry off|on|check\n"
      "  --cache off|rw|ro|check\n"
      "                       per-request engine modes (omitted = the\n"
      "                       daemon's defaults)\n"
      "  --jobs N             discharge threads for this request\n"
      "  --progress           stream per-obligation progress to stderr\n"
      "  --expect pass|fail   for scripting: exit 0 iff every submitted\n"
      "                       session's verdict matches\n"
      "  --timeout-ms N       per-request receive timeout (default 600000)\n");
  return 2;
}

/// Maps a mode string to its raw wire byte (0 stays \"daemon default\").
bool porByte(const char *Mode, uint8_t &Out) {
  if (!std::strcmp(Mode, "off"))
    Out = 1;
  else if (!std::strcmp(Mode, "on"))
    Out = 2;
  else if (!std::strcmp(Mode, "dynamic"))
    Out = 3;
  else if (!std::strcmp(Mode, "check"))
    Out = 4;
  else if (!std::strcmp(Mode, "check-dynamic"))
    Out = 5;
  else
    return false;
  return true;
}

bool symByte(const char *Mode, uint8_t &Out) {
  if (!std::strcmp(Mode, "off"))
    Out = 1;
  else if (!std::strcmp(Mode, "on"))
    Out = 2;
  else if (!std::strcmp(Mode, "check"))
    Out = 3;
  else
    return false;
  return true;
}

bool cacheByte(const char *Mode, uint8_t &Out) {
  if (!std::strcmp(Mode, "off"))
    Out = 1;
  else if (!std::strcmp(Mode, "rw"))
    Out = 2;
  else if (!std::strcmp(Mode, "ro"))
    Out = 3;
  else if (!std::strcmp(Mode, "check"))
    Out = 4;
  else
    return false;
  return true;
}

void printProgress(const dist::ProgressMsg &P) {
  std::string Timing;
  if (P.ElapsedUs && !P.FromCache)
    Timing = " " + std::to_string(P.ElapsedUs) + "us";
  std::fprintf(stderr, "  [%u/%u] %s %s%s%s\n", P.Completed, P.Total,
               P.Name.c_str(), P.Passed ? "ok" : "FAILED",
               P.FromCache ? " (cache)" : "", Timing.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket;
  uint8_t Por = 0, Sym = 0, Cache = 0;
  uint32_t Jobs = 0;
  bool Progress = false;
  int ExpectPass = -1; // -1 = no expectation.
  long TimeoutMs = 600000;
  std::vector<const char *> Cmd;

  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--socket") && I + 1 < Argc) {
      Socket = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--por") && I + 1 < Argc) {
      if (!porByte(Argv[++I], Por))
        return usage();
    } else if (!std::strcmp(Argv[I], "--symmetry") && I + 1 < Argc) {
      if (!symByte(Argv[++I], Sym))
        return usage();
    } else if (!std::strcmp(Argv[I], "--cache") && I + 1 < Argc) {
      if (!cacheByte(Argv[++I], Cache))
        return usage();
    } else if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc) {
      char *End = nullptr;
      long N = std::strtol(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || N < 0)
        return usage();
      Jobs = static_cast<uint32_t>(N);
    } else if (!std::strcmp(Argv[I], "--progress")) {
      Progress = true;
    } else if (!std::strcmp(Argv[I], "--expect") && I + 1 < Argc) {
      ++I;
      if (!std::strcmp(Argv[I], "pass"))
        ExpectPass = 1;
      else if (!std::strcmp(Argv[I], "fail"))
        ExpectPass = 0;
      else
        return usage();
    } else if (!std::strcmp(Argv[I], "--timeout-ms") && I + 1 < Argc) {
      char *End = nullptr;
      TimeoutMs = std::strtol(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || TimeoutMs <= 0)
        return usage();
    } else {
      Cmd.push_back(Argv[I]);
    }
  }
  if (Socket.empty() || Cmd.empty())
    return usage();

  service::ServiceClient Client(Socket);
  if (!Client.ok()) {
    std::fprintf(stderr, "fcsl-client: %s\n", Client.error().c_str());
    return 1;
  }
  Client.setRequestTimeoutMs(static_cast<int>(TimeoutMs));

  if (!std::strcmp(Cmd[0], "stats")) {
    if (Cmd.size() != 1)
      return usage();
    std::optional<dist::CacheStatsMsg> S = Client.stats();
    if (!S) {
      std::fprintf(stderr, "fcsl-client: %s\n", Client.error().c_str());
      return 1;
    }
    // A stable key-value shape so scripts can grep single counters.
    std::printf("requests_served %llu\n"
                "sessions_run %llu\n"
                "served_from_cache %llu\n"
                "obligations_replayed %llu\n"
                "rejected %llu\n"
                "unknown_frames %llu\n"
                "malformed_frames %llu\n"
                "store_records %llu\n"
                "store_bytes %llu\n"
                "uptime_us %llu\n",
                static_cast<unsigned long long>(S->RequestsServed),
                static_cast<unsigned long long>(S->SessionsRun),
                static_cast<unsigned long long>(S->ServedFromCache),
                static_cast<unsigned long long>(S->ObligationsReplayed),
                static_cast<unsigned long long>(S->Rejected),
                static_cast<unsigned long long>(S->UnknownFrames),
                static_cast<unsigned long long>(S->MalformedFrames),
                static_cast<unsigned long long>(S->StoreRecords),
                static_cast<unsigned long long>(S->StoreBytes),
                static_cast<unsigned long long>(S->UptimeUs));
    return 0;
  }

  if (!std::strcmp(Cmd[0], "shutdown")) {
    if (Cmd.size() != 1)
      return usage();
    if (!Client.shutdown()) {
      std::fprintf(stderr, "fcsl-client: shutdown not acked: %s\n",
                   Client.error().c_str());
      return 1;
    }
    return 0;
  }

  if (std::strcmp(Cmd[0], "verify") != 0 || Cmd.size() != 2)
    return usage();

  // `verify all` asks the daemon session by session, exactly like the
  // direct tool loops over the registry — so the concatenated reports
  // diff against `fcsl-verify verify all` line for line.
  std::vector<std::string> Names;
  if (!std::strcmp(Cmd[1], "all")) {
    for (const CaseEntry &Case : allVerifiableSessions())
      Names.push_back(Case.Name);
  } else {
    Names.push_back(Cmd[1]);
  }

  int Status = 0;
  for (const std::string &Name : Names) {
    std::optional<dist::ReportMsg> R =
        Client.submit(Name, Por, Sym, Cache, Jobs,
                      Progress ? printProgress : service::ProgressSink{});
    if (!R) {
      std::fprintf(stderr, "fcsl-client: %s\n", Client.error().c_str());
      return 1;
    }
    if (!R->Ok) {
      std::fprintf(stderr, "fcsl-client: rejected: %s\n", R->Error.c_str());
      return 1;
    }
    std::fputs(renderSessionReport(R->Report).c_str(), stdout);
    std::printf("\n"); // the separator `fcsl-verify verify` prints.
    if (ExpectPass >= 0 &&
        R->Report.AllPassed != static_cast<bool>(ExpectPass)) {
      std::fprintf(stderr,
                   "fcsl-client: session '%s' %s but --expect said %s\n",
                   Name.c_str(), R->Report.AllPassed ? "passed" : "failed",
                   ExpectPass ? "pass" : "fail");
      Status = 1;
    } else if (ExpectPass < 0 && !R->Report.AllPassed) {
      Status = 1;
    }
  }
  return Status;
}
