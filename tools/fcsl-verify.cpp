//===- tools/fcsl-verify.cpp - Command-line verification driver ------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// The command-line entry point to the verification suite:
//
//   fcsl-verify list                 list the case studies
//   fcsl-verify verify <name|all>    discharge one (or every) session
//   fcsl-verify table1               regenerate Table 1
//   fcsl-verify table2               regenerate Table 2
//   fcsl-verify fig5 [--dot]         regenerate Figure 5
//
//===----------------------------------------------------------------------===//

#include "cache/Store.h"
#include "concurroid/Registry.h"
#include "dist/Coordinator.h"
#include "dist/Wire.h"
#include "prog/Engine.h"
#include "structures/StackIface.h"
#include "structures/Suite.h"
#include "support/Format.h"
#include "support/Intern.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace fcsl;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fcsl-verify [--jobs N] [--por MODE] [--symmetry MODE] "
               "[--shards N] [--dist-compress MODE] [--cache MODE] "
               "<command>\n"
               "  list                 list the verifiable case studies\n"
               "  verify <name|all>    run one (or every) verification "
               "session\n"
               "  table1               regenerate the paper's Table 1\n"
               "  table2               regenerate the paper's Table 2\n"
               "  fig5 [--dot]         regenerate the paper's Figure 5\n"
               "\n"
               "  --jobs N             discharge obligations over N worker "
               "threads\n"
               "                       (0 = all hardware threads; default "
               "from FCSL_JOBS, else 1)\n"
               "  --por off|on|dynamic|check|check-dynamic\n"
               "                       partial-order reduction for every "
               "exploration:\n"
               "                       off = full interleaving (default), on "
               "= ample+sleep\n"
               "                       reduction, dynamic = on plus ample "
               "sets licensed by\n"
               "                       observed footprints (env-future "
               "closure), check /\n"
               "                       check-dynamic = run full and reduced, "
               "cross-validate\n"
               "                       (default from FCSL_POR, else off)\n"
               "  --symmetry off|on|check\n"
               "                       orbit canonicalization of "
               "interchangeable sibling\n"
               "                       threads: off = explore raw configs "
               "(default), on =\n"
               "                       rewrite each config to its orbit "
               "representative,\n"
               "                       check = run both and cross-validate "
               "verdicts and\n"
               "                       terminals (default from FCSL_SYMMETRY, "
               "else off);\n"
               "                       composes with --por and --shards\n"
               "  --shards N           partition every exploration across N "
               "worker processes\n"
               "                       by state fingerprint (1 = in-process; "
               "default from\n"
               "                       FCSL_SHARDS, else 1); composes with "
               "--por and --jobs\n"
               "  --dist-compress on|off\n"
               "                       dictionary-streamed frontier frames "
               "between shards:\n"
               "                       each interned node crosses a "
               "connection once as a\n"
               "                       definition, then as a varint "
               "reference (default on;\n"
               "                       off = the plain per-config encoding, "
               "the A/B baseline;\n"
               "                       default from FCSL_DIST_COMPRESS)\n"
               "  --cache off|rw|ro|check\n"
               "                       persistent obligation-verdict cache "
               "(content-addressed\n"
               "                       store in FCSL_CACHE_DIR, default "
               ".fcsl-cache): off =\n"
               "                       discharge everything (default), rw = "
               "serve hits and\n"
               "                       record misses, ro = serve hits, never "
               "write, check =\n"
               "                       re-discharge hits and fail loudly on "
               "any divergence\n"
               "                       (default from FCSL_CACHE, else off)\n"
               "  --stats              after the command, print intern-arena "
               "and visited-set\n"
               "                       statistics (node counts, dedup ratio, "
               "peak bytes)\n");
  return 2;
}

/// Validates every FCSL_* environment knob the tool honors: a typo'd mode
/// must fail loudly at startup, not silently fall back to the default and
/// quietly verify with the wrong engine configuration.
int validateEnv() {
  int Bad = 0;
  auto Reject = [&](const char *Var, const char *Val, const char *Want) {
    std::fprintf(stderr, "error: invalid %s value '%s' (expected %s)\n", Var,
                 Val, Want);
    Bad = 2;
  };
  if (const char *E = std::getenv("FCSL_POR"))
    if (*E && std::strcmp(E, "off") != 0 && std::strcmp(E, "on") != 0 &&
        std::strcmp(E, "1") != 0 && std::strcmp(E, "dynamic") != 0 &&
        std::strcmp(E, "check") != 0 && std::strcmp(E, "check-dynamic") != 0)
      Reject("FCSL_POR", E, "off|on|dynamic|check|check-dynamic");
  if (const char *E = std::getenv("FCSL_SYMMETRY"))
    if (*E && std::strcmp(E, "off") != 0 && std::strcmp(E, "on") != 0 &&
        std::strcmp(E, "1") != 0 && std::strcmp(E, "check") != 0)
      Reject("FCSL_SYMMETRY", E, "off|on|check");
  if (const char *E = std::getenv("FCSL_CACHE")) {
    cache::CacheMode M;
    if (*E && !cache::parseCacheMode(E, M))
      Reject("FCSL_CACHE", E, "off|rw|ro|check");
  }
  if (const char *E = std::getenv("FCSL_DIST_COMPRESS"))
    if (*E && std::strcmp(E, "on") != 0 && std::strcmp(E, "off") != 0 &&
        std::strcmp(E, "1") != 0 && std::strcmp(E, "0") != 0)
      Reject("FCSL_DIST_COMPRESS", E, "on|off");
  auto CheckUnsigned = [&](const char *Var, long Min) {
    const char *E = std::getenv(Var);
    if (!E || !*E)
      return;
    char *End = nullptr;
    long V = std::strtol(E, &End, 10);
    if (End == E || *End != '\0' || V < Min)
      Reject(Var, E, "a non-negative integer");
  };
  CheckUnsigned("FCSL_JOBS", 0);
  CheckUnsigned("FCSL_SHARDS", 1);
  return Bad;
}

/// Per-structure symmetry accounting, filled by runVerify/runTable1 when
/// both --stats and a non-off symmetry mode are active.
struct CaseSymRecord {
  std::string Name;
  uint64_t Configs = 0; ///< configs explored by this session's runs.
  uint64_t Lookups = 0; ///< orbit-cache probes.
  uint64_t Hits = 0;    ///< probes answered from the cache.
  uint64_t Changed = 0; ///< probes whose config was rewritten.
};
std::vector<CaseSymRecord> SymPerCase;
bool CollectSymPerCase = false;

/// Per-session obligation-cache accounting, filled when both --stats and a
/// non-off cache mode are active.
struct CaseCacheRecord {
  std::string Name;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t StaleFlags = 0;
  uint64_t Stores = 0;
  uint64_t Divergences = 0;
  uint64_t Unkeyed = 0;
};
std::vector<CaseCacheRecord> CachePerCase;
bool CollectCachePerCase = false;

/// Runs one session, recording its orbit-cache and obligation-cache deltas
/// when asked.
SessionReport runCase(const CaseEntry &Case) {
  if (!CollectSymPerCase && !CollectCachePerCase)
    return Case.MakeSession().run();
  SymmetryStats SymBefore = symmetryStats();
  cache::CacheStats CacheBefore = cache::cacheStats();
  uint64_t ConfigsBefore = totalConfigsExplored();
  SessionReport Report = Case.MakeSession().run();
  if (CollectSymPerCase) {
    SymmetryStats After = symmetryStats();
    SymPerCase.push_back(CaseSymRecord{
        Case.Name, totalConfigsExplored() - ConfigsBefore,
        After.Lookups - SymBefore.Lookups, After.Hits - SymBefore.Hits,
        After.Changed - SymBefore.Changed});
  }
  if (CollectCachePerCase) {
    cache::CacheStats After = cache::cacheStats();
    CachePerCase.push_back(CaseCacheRecord{
        Case.Name, After.Hits - CacheBefore.Hits,
        After.Misses - CacheBefore.Misses,
        After.StaleFlags - CacheBefore.StaleFlags,
        After.Stores - CacheBefore.Stores,
        After.Divergences - CacheBefore.Divergences,
        After.Unkeyed - CacheBefore.Unkeyed});
  }
  return Report;
}

/// Prints the canonical-state-layer statistics: per-arena interning
/// counters, the overall dedup ratio, and the engine's visited-set peaks.
void printStats() {
  InternStats Stats = internStats();
  TextTable Table;
  Table.setHeader({"arena", "requests", "nodes", "dedup"});
  for (unsigned I = 1; I <= 3; ++I)
    Table.setRightAligned(I);
  for (const InternTypeStats &S : Stats.PerType) {
    double Ratio = S.Nodes == 0 ? 1.0
                                : static_cast<double>(S.Requests) /
                                      static_cast<double>(S.Nodes);
    Table.addRow({S.Name, std::to_string(S.Requests),
                  std::to_string(S.Nodes), formatString("%.2f", Ratio)});
  }
  Table.addRow({"total", std::to_string(Stats.totalRequests()),
                std::to_string(Stats.totalNodes()),
                formatString("%.2f", Stats.dedupRatio())});
  std::printf("\nintern arenas:\n%s", Table.render().c_str());
  std::printf("peak visited set: %llu configs, %llu bytes\n",
              static_cast<unsigned long long>(peakVisitedNodes()),
              static_cast<unsigned long long>(peakVisitedBytes()));

  SymmetryStats Sym = symmetryStats();
  if (Sym.Lookups > 0) {
    std::printf("orbit cache: %llu lookups, %llu hits (%.1f%%), %llu "
                "canonicalized\n",
                static_cast<unsigned long long>(Sym.Lookups),
                static_cast<unsigned long long>(Sym.Hits),
                100.0 * static_cast<double>(Sym.Hits) /
                    static_cast<double>(Sym.Lookups),
                static_cast<unsigned long long>(Sym.Changed));
    if (!SymPerCase.empty()) {
      TextTable Orbits;
      Orbits.setHeader({"structure", "configs", "lookups", "canonicalized",
                        "est. orbit size"});
      for (unsigned I = 1; I <= 4; ++I)
        Orbits.setRightAligned(I);
      for (const CaseSymRecord &R : SymPerCase) {
        // With orbits of mean size k, k-1 of every k probed raw configs
        // rewrite to the representative, so lookups/(lookups-changed)
        // estimates k. Exact only in check mode (full vs canonical).
        double Est = R.Lookups > R.Changed
                         ? static_cast<double>(R.Lookups) /
                               static_cast<double>(R.Lookups - R.Changed)
                         : 1.0;
        Orbits.addRow({R.Name, std::to_string(R.Configs),
                       std::to_string(R.Lookups), std::to_string(R.Changed),
                       formatString("%.2f", Est)});
      }
      std::printf("per-structure orbits:\n%s", Orbits.render().c_str());
    }
  }

  PorStats Por = porStats();
  if (Por.RacesDetected + Por.BacktrackPoints + Por.WakeupReplays +
          Por.SleepHits + Por.FullExpansions >
      0)
    std::printf("por: %llu races detected, %llu backtrack points, %llu "
                "wakeup replays (peak %llu), %llu sleep-set hits, %llu "
                "full expansions\n",
                static_cast<unsigned long long>(Por.RacesDetected),
                static_cast<unsigned long long>(Por.BacktrackPoints),
                static_cast<unsigned long long>(Por.WakeupReplays),
                static_cast<unsigned long long>(Por.WakeupPeak),
                static_cast<unsigned long long>(Por.SleepHits),
                static_cast<unsigned long long>(Por.FullExpansions));

  cache::CacheStats Cache = cache::cacheStats();
  if (Cache.Hits + Cache.Misses + Cache.Unkeyed > 0) {
    std::printf("obligation cache (%s): %llu hits, %llu misses (%llu stale "
                "by flag), %llu stored, %llu unkeyed\n",
                cache::cacheModeName(cache::defaultCacheMode()),
                static_cast<unsigned long long>(Cache.Hits),
                static_cast<unsigned long long>(Cache.Misses),
                static_cast<unsigned long long>(Cache.StaleFlags),
                static_cast<unsigned long long>(Cache.Stores),
                static_cast<unsigned long long>(Cache.Unkeyed));
    if (Cache.Hits > 0)
      std::printf("  replayed from store: %llu checks, %llu configs, "
                  "%.1f ms of cold discharge avoided\n",
                  static_cast<unsigned long long>(Cache.ReplayedChecks),
                  static_cast<unsigned long long>(Cache.ReplayedConfigs),
                  static_cast<double>(Cache.ReplayedUs) / 1000.0);
    if (Cache.CheckRuns > 0)
      std::printf("  cache cross-check: %llu hits re-discharged, %llu "
                  "divergences\n",
                  static_cast<unsigned long long>(Cache.CheckRuns),
                  static_cast<unsigned long long>(Cache.Divergences));
    if (const cache::Store *S = cache::activeStore())
      std::printf("  store: %s (%zu records, %llu bytes)\n",
                  S->path().c_str(), S->records(),
                  static_cast<unsigned long long>(S->fileBytes()));
    if (!CachePerCase.empty()) {
      TextTable Tbl;
      Tbl.setHeader({"structure", "hits", "misses", "stale-flag", "stored",
                     "unkeyed"});
      for (unsigned I = 1; I <= 5; ++I)
        Tbl.setRightAligned(I);
      for (const CaseCacheRecord &R : CachePerCase)
        Tbl.addRow({R.Name, std::to_string(R.Hits),
                    std::to_string(R.Misses), std::to_string(R.StaleFlags),
                    std::to_string(R.Stores), std::to_string(R.Unkeyed)});
      std::printf("per-structure cache traffic:\n%s", Tbl.render().c_str());
    }
  }

  dist::FleetStats Fleet = dist::fleetTotals();
  if (Fleet.Fleets == 0)
    return;
  std::printf("sharded exploration: %llu fleets, %llu configs exchanged in "
              "%llu batches (%llu bytes), %llu duplicate relays dropped, "
              "%llu cache records merged, peak child rss %llu kB (sum %llu "
              "kB)\n",
              static_cast<unsigned long long>(Fleet.Fleets),
              static_cast<unsigned long long>(Fleet.Configs),
              static_cast<unsigned long long>(Fleet.Messages),
              static_cast<unsigned long long>(Fleet.Bytes),
              static_cast<unsigned long long>(Fleet.RelayDroppedDupes),
              static_cast<unsigned long long>(Fleet.CacheRecordsMerged),
              static_cast<unsigned long long>(Fleet.ChildRssKbMax),
              static_cast<unsigned long long>(Fleet.ChildRssKbSum));

  // The wire table: every frame the hub received, by message type.
  {
    static const char *const TagNames[16] = {
        "-",           "hello",      "batch",
        "stats",       "drain",      "verdict",
        "cache-delta", "batch-dict", "submit-session",
        "progress",    "report",     "cache-stats",
        "shutdown",    "-",          "-",
        "-"};
    TextTable Wire;
    Wire.setHeader({"msg type", "frames", "bytes"});
    Wire.setRightAligned(1);
    Wire.setRightAligned(2);
    for (size_t I = 1; I != Fleet.RecvFrames.size(); ++I)
      if (Fleet.RecvFrames[I] != 0)
        Wire.addRow({TagNames[I], std::to_string(Fleet.RecvFrames[I]),
                     std::to_string(Fleet.RecvBytes[I])});
    std::printf("wire traffic received by the hub:\n%s",
                Wire.render().c_str());
  }

  TextTable Shards;
  Shards.setHeader({"shard", "expanded", "sent", "recv", "suppressed",
                    "batches", "dict nodes", "def B", "ref B", "rss kB"});
  for (unsigned I = 1; I <= 9; ++I)
    Shards.setRightAligned(I);
  for (const dist::ShardExchange &S : Fleet.LastRun)
    Shards.addRow({std::to_string(S.ShardId), std::to_string(S.Expanded),
                   std::to_string(S.SentConfigs),
                   std::to_string(S.RecvConfigs),
                   std::to_string(S.SuppressedSends),
                   std::to_string(S.SentBatches),
                   std::to_string(S.DictNodes),
                   std::to_string(S.DictDefBytes),
                   std::to_string(S.DictRefBytes),
                   std::to_string(S.MaxRssKb)});
  std::printf("last fleet:\n%s", Shards.render().c_str());
}

/// All sessions: the paper's eleven plus the abstract-stack extension.
std::vector<CaseEntry> allSessions() { return allVerifiableSessions(); }

int runList() {
  for (const CaseEntry &Case : allSessions())
    std::printf("%s\n", Case.Name.c_str());
  return 0;
}

int reportSession(const SessionReport &Report) {
  // Shared with fcsl-client (spec/Session.h) so a daemon round-trip
  // prints byte-identically to a direct run.
  std::fputs(renderSessionReport(Report).c_str(), stdout);
  return Report.AllPassed ? 0 : 1;
}

int runVerify(const char *Name) {
  bool All = std::strcmp(Name, "all") == 0;
  bool Found = false;
  int Status = 0;
  for (const CaseEntry &Case : allSessions()) {
    if (!All && Case.Name != Name)
      continue;
    Found = true;
    Status |= reportSession(runCase(Case));
    std::printf("\n");
  }
  if (!Found) {
    std::fprintf(stderr, "error: unknown case study '%s'; try 'list'\n",
                 Name);
    return 2;
  }
  return Status;
}

int runTable1() {
  TextTable Table;
  Table.setHeader({"Program", "Libs", "Conc", "Acts", "Stab", "Main",
                   "Total", "Checks", "ms"});
  for (unsigned I = 1; I <= 8; ++I)
    Table.setRightAligned(I);
  bool AllPassed = true;
  for (const CaseEntry &Case : allCaseStudies()) {
    SessionReport Report = runCase(Case);
    AllPassed &= Report.AllPassed;
    auto Cell = [&](ObCategory C) -> std::string {
      uint64_t N = Report.PerCategory[size_t(C)].Obligations;
      return N == 0 ? "-" : std::to_string(N);
    };
    Table.addRow({Report.Program, Cell(ObCategory::Libs),
                  Cell(ObCategory::Conc), Cell(ObCategory::Acts),
                  Cell(ObCategory::Stab), Cell(ObCategory::Main),
                  std::to_string(Report.totalObligations()),
                  std::to_string(Report.totalChecks()),
                  formatString("%.0f", Report.TotalMs)});
  }
  std::printf("%s", Table.render().c_str());
  return AllPassed ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  // Strip `--jobs N` and `--stats` (anywhere on the line) before command
  // dispatch; --jobs sets the process-default job count picked up by every
  // session and engine invocation with Jobs = 0, and --stats prints the
  // canonical-state-layer counters after the command finishes.
  std::vector<char *> Args;
  bool Stats = false;
  bool PorCheckRequested = false;
  bool SymCheckRequested = false;
  bool SymRequested = false;
  if (int Bad = validateEnv())
    return Bad;
  dist::installDistributedEngine();
  auto ParseCache = [](const char *Mode) -> bool {
    cache::CacheMode M;
    if (!cache::parseCacheMode(Mode, M))
      return false;
    cache::setDefaultCacheMode(M);
    return true;
  };
  auto ParseShards = [](const char *Text) -> bool {
    char *End = nullptr;
    long N = std::strtol(Text, &End, 10);
    if (End == Text || *End != '\0' || N < 1)
      return false;
    setDefaultShards(static_cast<unsigned>(N));
    return true;
  };
  auto ParseDistCompress = [](const char *Mode) -> bool {
    if (std::strcmp(Mode, "on") == 0 || std::strcmp(Mode, "1") == 0)
      dist::setDistCompress(true);
    else if (std::strcmp(Mode, "off") == 0 || std::strcmp(Mode, "0") == 0)
      dist::setDistCompress(false);
    else
      return false;
    return true;
  };
  auto ParsePor = [&](const char *Mode) -> bool {
    if (std::strcmp(Mode, "off") == 0) {
      setDefaultPorMode(PorMode::Off);
    } else if (std::strcmp(Mode, "on") == 0) {
      setDefaultPorMode(PorMode::On);
    } else if (std::strcmp(Mode, "dynamic") == 0) {
      setDefaultPorMode(PorMode::Dynamic);
    } else if (std::strcmp(Mode, "check") == 0) {
      setDefaultPorMode(PorMode::Check);
      PorCheckRequested = true;
    } else if (std::strcmp(Mode, "check-dynamic") == 0) {
      setDefaultPorMode(PorMode::CheckDynamic);
      PorCheckRequested = true;
    } else {
      return false;
    }
    return true;
  };
  auto ParseSym = [&](const char *Mode) -> bool {
    if (std::strcmp(Mode, "off") == 0) {
      setDefaultSymmetryMode(SymMode::Off);
    } else if (std::strcmp(Mode, "on") == 0) {
      setDefaultSymmetryMode(SymMode::On);
      SymRequested = true;
    } else if (std::strcmp(Mode, "check") == 0) {
      setDefaultSymmetryMode(SymMode::Check);
      SymRequested = true;
      SymCheckRequested = true;
    } else {
      return false;
    }
    return true;
  };
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0) {
      if (I + 1 >= Argc)
        return usage();
      char *End = nullptr;
      long N = std::strtol(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || N < 0)
        return usage();
      setDefaultJobs(static_cast<unsigned>(N));
      continue;
    }
    if (std::strcmp(Argv[I], "--por") == 0) {
      if (I + 1 >= Argc || !ParsePor(Argv[++I]))
        return usage();
      continue;
    }
    if (std::strncmp(Argv[I], "--por=", 6) == 0) {
      if (!ParsePor(Argv[I] + 6))
        return usage();
      continue;
    }
    if (std::strcmp(Argv[I], "--symmetry") == 0) {
      if (I + 1 >= Argc || !ParseSym(Argv[++I]))
        return usage();
      continue;
    }
    if (std::strncmp(Argv[I], "--symmetry=", 11) == 0) {
      if (!ParseSym(Argv[I] + 11))
        return usage();
      continue;
    }
    if (std::strcmp(Argv[I], "--shards") == 0) {
      if (I + 1 >= Argc || !ParseShards(Argv[++I]))
        return usage();
      continue;
    }
    if (std::strncmp(Argv[I], "--shards=", 9) == 0) {
      if (!ParseShards(Argv[I] + 9))
        return usage();
      continue;
    }
    if (std::strcmp(Argv[I], "--dist-compress") == 0) {
      if (I + 1 >= Argc || !ParseDistCompress(Argv[++I]))
        return usage();
      continue;
    }
    if (std::strncmp(Argv[I], "--dist-compress=", 16) == 0) {
      if (!ParseDistCompress(Argv[I] + 16))
        return usage();
      continue;
    }
    if (std::strcmp(Argv[I], "--cache") == 0) {
      if (I + 1 >= Argc || !ParseCache(Argv[++I]))
        return usage();
      continue;
    }
    if (std::strncmp(Argv[I], "--cache=", 8) == 0) {
      if (!ParseCache(Argv[I] + 8))
        return usage();
      continue;
    }
    if (std::strcmp(Argv[I], "--stats") == 0) {
      Stats = true;
      continue;
    }
    Args.push_back(Argv[I]);
  }
  // FCSL_SYMMETRY may select a mode without the flag; resolve once so the
  // cross-check summary and the per-structure tables follow either spelling.
  SymMode ResolvedSym = defaultSymmetryMode();
  SymCheckRequested |= ResolvedSym == SymMode::Check;
  SymRequested |= ResolvedSym != SymMode::Off;
  CollectSymPerCase = Stats && SymRequested;
  CollectCachePerCase =
      Stats && cache::defaultCacheMode() != cache::CacheMode::Off;
  Argc = static_cast<int>(Args.size()) + 1;
  if (Argc < 2)
    return usage();
  const char *Cmd = Args[0];
  int Status = 2;
  if (std::strcmp(Cmd, "list") == 0) {
    Status = runList();
  } else if (std::strcmp(Cmd, "verify") == 0) {
    Status = Argc >= 3 ? runVerify(Args[1]) : usage();
  } else if (std::strcmp(Cmd, "table1") == 0) {
    Status = runTable1();
  } else if (std::strcmp(Cmd, "table2") == 0) {
    registerAllLibraries();
    std::printf("%s", globalRegistry().renderTable2().c_str());
    Status = 0;
  } else if (std::strcmp(Cmd, "fig5") == 0) {
    registerAllLibraries();
    DotGraph G = globalRegistry().dependencyGraph();
    bool Dot = Argc >= 3 && std::strcmp(Args[1], "--dot") == 0;
    std::printf("%s", Dot ? G.render().c_str() : G.renderAscii().c_str());
    Status = 0;
  } else {
    return usage();
  }
  if (PorCheckRequested) {
    PorCheckTotals Totals = porCheckTotals();
    if (Totals.Full > 0)
      std::printf("\npor cross-check: %llu full configs vs %llu reduced "
                  "(ratio %.3f), verdicts identical\n",
                  static_cast<unsigned long long>(Totals.Full),
                  static_cast<unsigned long long>(Totals.Reduced),
                  static_cast<double>(Totals.Reduced) /
                      static_cast<double>(Totals.Full));
  }
  if (SymCheckRequested) {
    SymCheckTotals Totals = symCheckTotals();
    if (Totals.Full > 0)
      std::printf("\nsymmetry cross-check: %llu full configs vs %llu "
                  "canonical (ratio %.3f), verdicts identical\n",
                  static_cast<unsigned long long>(Totals.Full),
                  static_cast<unsigned long long>(Totals.Canonical),
                  static_cast<double>(Totals.Canonical) /
                      static_cast<double>(Totals.Full));
  }
  if (Stats)
    printStats();
  return Status;
}
