//===- tests/state_test.cpp - Subjective state tests -----------------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "state/GlobalState.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label L1 = 1;
constexpr Label L2 = 2;

View twoLabelView() {
  View S;
  S.addLabel(L1, LabelSlice{PCMVal::ofNat(2), Heap(), PCMVal::ofNat(3)});
  S.addLabel(L2, LabelSlice{PCMVal::singletonPtr(Ptr(1)),
                            Heap::singleton(Ptr(9), Val::ofInt(0)),
                            PCMVal::ofPtrSet({})});
  return S;
}

} // namespace

TEST(ViewTest, GettersAndSetters) {
  View S = twoLabelView();
  EXPECT_TRUE(S.hasLabel(L1));
  EXPECT_FALSE(S.hasLabel(7));
  EXPECT_EQ(S.self(L1).getNat(), 2u);
  EXPECT_EQ(S.other(L1).getNat(), 3u);
  EXPECT_TRUE(S.joint(L2).contains(Ptr(9)));
  S.setSelf(L1, PCMVal::ofNat(5));
  EXPECT_EQ(S.self(L1).getNat(), 5u);
  EXPECT_EQ(S.labels(), (std::vector<Label>{L1, L2}));
}

TEST(ViewTest, SelfOtherJoin) {
  View S = twoLabelView();
  auto Total = S.selfOtherJoin(L1);
  ASSERT_TRUE(Total);
  EXPECT_EQ(Total->getNat(), 5u);
  // Clashing contributions are detected.
  S.setSelf(L2, PCMVal::singletonPtr(Ptr(4)));
  S.setOther(L2, PCMVal::singletonPtr(Ptr(4)));
  EXPECT_FALSE(S.selfOtherJoin(L2).has_value());
}

TEST(ViewTest, RealignSelfToOther) {
  View S = twoLabelView();
  EXPECT_TRUE(S.realignSelfToOther(L1, PCMVal::ofNat(2)));
  EXPECT_EQ(S.self(L1).getNat(), 0u);
  EXPECT_EQ(S.other(L1).getNat(), 5u);
  // Cannot move more than self holds.
  EXPECT_FALSE(S.realignSelfToOther(L1, PCMVal::ofNat(1)));
}

TEST(ViewTest, CompareAndHash) {
  View A = twoLabelView();
  View B = twoLabelView();
  EXPECT_EQ(A, B);
  B.setSelf(L1, PCMVal::ofNat(9));
  EXPECT_NE(A, B);
  EXPECT_LT(std::min(A, B), std::max(A, B));
}

TEST(GlobalStateTest, ViewsComputeOther) {
  GlobalState GS;
  GS.addLabel(L1, PCMType::nat(), Heap(), PCMVal::ofNat(10), false);
  GS.setSelf(L1, rootThread(), PCMVal::ofNat(1));
  GS.setSelf(L1, 5, PCMVal::ofNat(2));

  View Mine = GS.viewFor(rootThread());
  EXPECT_EQ(Mine.self(L1).getNat(), 1u);
  EXPECT_EQ(Mine.other(L1).getNat(), 12u); // env 10 + thread-5's 2.

  View Env = GS.viewForEnv();
  EXPECT_EQ(Env.self(L1).getNat(), 10u);
  EXPECT_EQ(Env.other(L1).getNat(), 3u);
}

TEST(GlobalStateTest, UnitContributionsCanonical) {
  GlobalState A, B;
  A.addLabel(L1, PCMType::nat(), Heap(), PCMVal::ofNat(0), false);
  B.addLabel(L1, PCMType::nat(), Heap(), PCMVal::ofNat(0), false);
  // Touching a thread's self with the unit leaves the state canonical.
  A.setSelf(L1, 42, PCMVal::ofNat(0));
  EXPECT_EQ(A, B);
  std::size_t SA = 0, SB = 0;
  A.hashInto(SA);
  B.hashInto(SB);
  EXPECT_EQ(SA, SB);
}

TEST(GlobalStateTest, ApplyThreadWritesBack) {
  GlobalState GS;
  GS.addLabel(L1, PCMType::nat(), Heap::singleton(Ptr(1), Val::ofInt(0)),
              PCMVal::ofNat(0), false);
  View Pre = GS.viewFor(rootThread());
  View Post = Pre;
  Post.setSelf(L1, PCMVal::ofNat(4));
  Post.setJoint(L1, Heap::singleton(Ptr(1), Val::ofInt(7)));
  GS.applyThread(rootThread(), Pre, Post);
  EXPECT_EQ(GS.selfOf(L1, rootThread()).getNat(), 4u);
  EXPECT_EQ(GS.joint(L1).lookup(Ptr(1)).getInt(), 7);
}

TEST(GlobalStateTest, ForkSplitsAndJoinReunites) {
  GlobalState GS;
  GS.addLabel(L1, PCMType::nat(), Heap(), PCMVal::ofNat(0), false);
  GS.setSelf(L1, rootThread(), PCMVal::ofNat(5));

  std::map<Label, std::pair<PCMVal, PCMVal>> Splits;
  Splits[L1] = {PCMVal::ofNat(2), PCMVal::ofNat(3)};
  GS.fork(rootThread(), leftChild(rootThread()),
          rightChild(rootThread()), Splits);
  EXPECT_EQ(GS.selfOf(L1, rootThread()).getNat(), 0u);
  EXPECT_EQ(GS.selfOf(L1, leftChild(rootThread())).getNat(), 2u);
  EXPECT_EQ(GS.selfOf(L1, rightChild(rootThread())).getNat(), 3u);
  // Subjectivity: each child sees the sibling's part in `other`.
  EXPECT_EQ(GS.viewFor(leftChild(rootThread())).other(L1).getNat(), 3u);

  // Children work, then join.
  GS.setSelf(L1, leftChild(rootThread()), PCMVal::ofNat(4));
  GS.joinChildren(rootThread(), leftChild(rootThread()),
                  rightChild(rootThread()));
  EXPECT_EQ(GS.selfOf(L1, rootThread()).getNat(), 7u);
}

TEST(GlobalStateTest, DefaultForkGivesAllToLeft) {
  GlobalState GS;
  GS.addLabel(L1, PCMType::nat(), Heap(), PCMVal::ofNat(0), false);
  GS.setSelf(L1, rootThread(), PCMVal::ofNat(5));
  GS.fork(rootThread(), 2, 3, {});
  EXPECT_EQ(GS.selfOf(L1, 2).getNat(), 5u);
  EXPECT_EQ(GS.selfOf(L1, 3).getNat(), 0u);
}

TEST(GlobalStateTest, RemoveLabelReturnsJoint) {
  GlobalState GS;
  Heap J = Heap::singleton(Ptr(3), Val::ofInt(3));
  GS.addLabel(L1, PCMType::ptrSet(), J, PCMVal::ofPtrSet({}), true);
  EXPECT_TRUE(GS.isEnvClosed(L1));
  Heap Out = GS.removeLabel(L1);
  EXPECT_EQ(Out, J);
  EXPECT_FALSE(GS.hasLabel(L1));
}

TEST(GlobalStateTest, ThreadTreeIds) {
  EXPECT_EQ(rootThread(), 1u);
  EXPECT_EQ(leftChild(1), 2u);
  EXPECT_EQ(rightChild(1), 3u);
  EXPECT_EQ(leftChild(3), 6u);
}
