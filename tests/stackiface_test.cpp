//===- tests/stackiface_test.cpp - Abstract stack interface tests ----------===//
//
// Part of fcsl-cpp. The unification exercise the paper's Section 6 left
// open: one client theorem, two implementations.
//
//===----------------------------------------------------------------------===//

#include "structures/StackIface.h"

#include <gtest/gtest.h>

using namespace fcsl;

/// Parameterized over the implementation: verifying the SAME client
/// against both protocols is the whole point.
class StackIfaceTest : public ::testing::TestWithParam<const char *> {
protected:
  StackProtocol protocol() {
    return std::string(GetParam()) == "treiber" ? treiberStackProtocol()
                                                : fcStackProtocol();
  }
};

TEST_P(StackIfaceTest, UnifiedPushPairTheorem) {
  ObligationResult R = verifyUnifiedPushPair(protocol(), 1, 2);
  EXPECT_TRUE(R.Passed) << R.Note;
  EXPECT_GT(R.Checks, 0u);
}

TEST_P(StackIfaceTest, UnifiedPushPopTheorem) {
  ObligationResult R = verifyUnifiedPushPop(protocol(), 9);
  EXPECT_TRUE(R.Passed) << R.Note;
}

TEST_P(StackIfaceTest, InterfaceProgramsDefined) {
  StackProtocol P = protocol();
  EXPECT_TRUE(P.Defs->contains("s_push"));
  EXPECT_TRUE(P.Defs->contains("s_pop"));
  EXPECT_NE(P.TokenLeft, P.TokenRight);
}

INSTANTIATE_TEST_SUITE_P(BothStacks, StackIfaceTest,
                         ::testing::Values("treiber", "fc"),
                         [](const ::testing::TestParamInfo<const char *>
                                &I) { return std::string(I.param); });

TEST(StackIfaceTest, SessionPasses) {
  SessionReport Report = makeStackIfaceSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
  EXPECT_EQ(Report.totalObligations(), 4u);
}
