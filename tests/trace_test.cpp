//===- tests/trace_test.cpp - Counterexample trace tests -------------------===//
//
// Part of fcsl-cpp. When verification fails, the engine reconstructs the
// schedule that reaches the failure — the tool-side counterpart of
// staring at a failing Coq goal.
//
//===----------------------------------------------------------------------===//

#include "structures/SpanTree.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Sp = 2;
} // namespace

TEST(TraceTest, UnsafeActionGetsASchedule) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  // mark 1, then nullify node 2 which we never marked: unsafe after one
  // successful step.
  ProgRef Main = Prog::seq(
      Prog::act(Case.TryMark, {Expr::litPtr(Ptr(1))}),
      Prog::act(Case.NullifyL, {Expr::litPtr(Ptr(2))}));
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R =
      explore(Main, spanOpenState(Case, figure2Graph(), {}), Opts);
  ASSERT_FALSE(R.Safe);
  ASSERT_FALSE(R.FailureTrace.empty());
  // The trace ends at the unsafe nullify and contains the prior trymark.
  EXPECT_NE(R.FailureTrace.back().find("UNSAFE"), std::string::npos);
  EXPECT_NE(R.FailureTrace.back().find("nullify_l"), std::string::npos);
  bool SawMark = false;
  for (const std::string &Step : R.FailureTrace)
    SawMark |= Step.find("trymark") != std::string::npos;
  EXPECT_TRUE(SawMark);
  // Rendering numbers the steps.
  EXPECT_NE(R.renderTrace().find("1. "), std::string::npos);
}

TEST(TraceTest, SafeRunsHaveNoTrace) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  ProgRef Main = Prog::act(Case.TryMark, {Expr::litPtr(Ptr(1))});
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R =
      explore(Main, spanOpenState(Case, figure2Graph(), {}), Opts);
  EXPECT_TRUE(R.complete());
  EXPECT_TRUE(R.FailureTrace.empty());
}

TEST(TraceTest, EnvironmentStepsAppearInTraces) {
  // Under interference, an env mark can make our later nullify unsafe
  // only if WE never marked... instead: our trymark succeeds only when
  // env has not claimed the node; drive a failure whose schedule must
  // mention an env step: trymark(1); if it FAILED (env won), nullify(1)
  // unsafely.
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  ProgRef Main = Prog::bind(
      Prog::act(Case.TryMark, {Expr::litPtr(Ptr(1))}), "b",
      Prog::ifThenElse(Expr::var("b"), Prog::ret(Expr::litBool(true)),
                       Prog::seq(Prog::act(Case.NullifyL,
                                           {Expr::litPtr(Ptr(1))}),
                                 Prog::ret(Expr::litBool(false)))));
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  RunResult R =
      explore(Main, spanOpenState(Case, figure2Graph(), {}), Opts);
  ASSERT_FALSE(R.Safe);
  bool SawEnv = false;
  for (const std::string &Step : R.FailureTrace)
    SawEnv |= Step.find("env: ") != std::string::npos;
  EXPECT_TRUE(SawEnv) << R.renderTrace();
}
