//===- tests/spec_test.cpp - Assertions/stability/verifier tests -----------===//
//
// Part of fcsl-cpp. Includes negative tests: unstable assertions must be
// rejected, false triples must fail.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Entangle.h"
#include "concurroid/Priv.h"
#include "spec/Stability.h"
#include "spec/Verifier.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label Pv = 1;
constexpr Label Ct = 2;
const Ptr Cell = Ptr(1);

ConcurroidRef makeCounter(int64_t EnvCap) {
  auto Coh = [](const View &S) {
    if (!S.hasLabel(Ct))
      return false;
    const Val *V = S.joint(Ct).tryLookup(Cell);
    return V && V->isInt() &&
           V->getInt() == static_cast<int64_t>(S.self(Ct).getNat() +
                                               S.other(Ct).getNat());
  };
  auto C = makeConcurroid("Counter", {OwnedLabel{Ct, "ct",
                                                 PCMType::nat()}},
                          Coh);
  C->addTransition(Transition(
      "bump", TransitionKind::Internal,
      [EnvCap](const View &Pre) -> std::vector<View> {
        if (!Pre.hasLabel(Ct))
          return {};
        int64_t Cur = Pre.joint(Ct).lookup(Cell).getInt();
        if (Cur >= EnvCap)
          return {};
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(Cell, Val::ofInt(Cur + 1));
        Post.setJoint(Ct, std::move(Joint));
        Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return {Post};
      }));
  return C;
}

View counterView(uint64_t Mine, uint64_t Theirs) {
  View S;
  S.addLabel(Ct, LabelSlice{PCMVal::ofNat(Mine),
                            Heap::singleton(
                                Cell, Val::ofInt(static_cast<int64_t>(
                                          Mine + Theirs))),
                            PCMVal::ofNat(Theirs)});
  return S;
}

} // namespace

TEST(AssertionTest, Combinators) {
  Assertion T = assertTrue();
  Assertion HasCell = jointContains(Ct, Cell);
  View S = counterView(0, 0);
  EXPECT_TRUE(T.holds(S));
  EXPECT_TRUE(HasCell.holds(S));
  EXPECT_FALSE((!HasCell).holds(S));
  EXPECT_TRUE((T && HasCell).holds(S));
  EXPECT_TRUE(((!T) || HasCell).holds(S));
  EXPECT_TRUE(contributionsCompatible(Ct).holds(S));
  EXPECT_TRUE(selfIs(Ct, PCMVal::ofNat(0)).holds(S));
  EXPECT_FALSE(selfIs(Ct, PCMVal::ofNat(1)).holds(S));
}

TEST(StabilityTest, StableAssertionAccepted) {
  ConcurroidRef C = makeCounter(3);
  // "my contribution is exactly 1" cannot be changed by interference.
  Assertion Mine("self == 1", [](const View &S) {
    return S.self(Ct).getNat() == 1;
  });
  StabilityReport R = checkStability(Mine, *C, {counterView(1, 0)});
  EXPECT_TRUE(R.Stable) << R.CounterExample;
  EXPECT_GT(R.EnvStepsTaken, 0u);
}

TEST(StabilityTest, UnstableAssertionRejected) {
  ConcurroidRef C = makeCounter(3);
  // "the counter is exactly 1" is destroyed by an env bump.
  Assertion Exact("cell == 1", [](const View &S) {
    return S.joint(Ct).lookup(Cell).getInt() == 1;
  });
  StabilityReport R = checkStability(Exact, *C, {counterView(1, 0)});
  EXPECT_FALSE(R.Stable);
  EXPECT_FALSE(R.CounterExample.empty());
}

TEST(StabilityTest, MonotoneRelationAccepted) {
  ConcurroidRef C = makeCounter(3);
  StabilityReport R = checkRelationStability(
      [](const View &Seed, const View &S) {
        return S.joint(Ct).lookup(Cell).getInt() >=
               Seed.joint(Ct).lookup(Cell).getInt();
      },
      "counter monotone", *C, {counterView(0, 0)});
  EXPECT_TRUE(R.Stable) << R.CounterExample;
}

TEST(StabilityTest, NonMonotoneRelationRejected) {
  ConcurroidRef C = makeCounter(3);
  StabilityReport R = checkRelationStability(
      [](const View &Seed, const View &S) {
        return S.joint(Ct).lookup(Cell).getInt() ==
               Seed.joint(Ct).lookup(Cell).getInt();
      },
      "counter frozen", *C, {counterView(0, 0)});
  EXPECT_FALSE(R.Stable);
}

namespace {

/// A tiny world for triple verification.
struct TripleWorld {
  ConcurroidRef C;
  ActionRef Incr;
  DefTable Defs;
};

TripleWorld makeTripleWorld(int64_t EnvCap) {
  TripleWorld W;
  ConcurroidRef Counter = makeCounter(EnvCap);
  W.C = entangle(makePriv(Pv), Counter);
  W.Incr = makeAction(
      "incr", W.C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *V = Pre.joint(Ct).tryLookup(Cell);
        if (!V)
          return std::nullopt;
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(Cell, Val::ofInt(V->getInt() + 1));
        Post.setJoint(Ct, std::move(Joint));
        Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return std::vector<ActOutcome>{{*V, std::move(Post)}};
      });
  return W;
}

GlobalState tripleState(int64_t Cell0, uint64_t EnvSelf) {
  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.addLabel(Ct, PCMType::nat(),
              Heap::singleton(Cell, Val::ofInt(Cell0)),
              PCMVal::ofNat(EnvSelf), false);
  return GS;
}

} // namespace

TEST(VerifierTest, ValidTripleHolds) {
  TripleWorld W = makeTripleWorld(2);
  Spec S;
  S.Name = "incr";
  S.C = W.C;
  S.Pre = assertTrue();
  S.PostName = "self grew by one";
  S.Post = [](const Val &, const View &I, const View &F) {
    return F.self(Ct).getNat() == I.self(Ct).getNat() + 1;
  };
  EngineOptions Opts;
  Opts.Ambient = W.C;
  Opts.EnvInterference = true;
  Opts.Defs = &W.Defs;
  VerifyResult R = verifyTriple(
      Prog::act(W.Incr, {}), S,
      {VerifyInstance{tripleState(0, 0), {}},
       VerifyInstance{tripleState(1, 1), {}}},
      Opts);
  EXPECT_TRUE(R.Holds) << R.FailureNote;
  EXPECT_EQ(R.InstancesChecked, 2u);
  EXPECT_GT(R.TerminalsChecked, 0u);
}

TEST(VerifierTest, FalsePostconditionRejected) {
  TripleWorld W = makeTripleWorld(2);
  Spec S;
  S.Name = "incr_wrong";
  S.C = W.C;
  S.Pre = assertTrue();
  S.PostName = "counter is exactly 1 (false under interference)";
  S.Post = [](const Val &, const View &, const View &F) {
    return F.joint(Ct).lookup(Cell).getInt() == 1;
  };
  EngineOptions Opts;
  Opts.Ambient = W.C;
  Opts.EnvInterference = true;
  Opts.Defs = &W.Defs;
  VerifyResult R = verifyTriple(Prog::act(W.Incr, {}), S,
                                {VerifyInstance{tripleState(0, 0), {}}},
                                Opts);
  EXPECT_FALSE(R.Holds);
  EXPECT_NE(R.FailureNote.find("incr_wrong"), std::string::npos);
}

TEST(VerifierTest, InstancesOutsidePreSkipped) {
  TripleWorld W = makeTripleWorld(0);
  Spec S;
  S.Name = "skipped";
  S.C = W.C;
  S.Pre = Assertion("cell is 42", [](const View &V) {
    return V.joint(Ct).lookup(Cell).getInt() == 42;
  });
  S.PostName = "unreachable";
  S.Post = [](const Val &, const View &, const View &) { return false; };
  EngineOptions Opts;
  Opts.Ambient = W.C;
  Opts.Defs = &W.Defs;
  VerifyResult R = verifyTriple(Prog::retUnit(), S,
                                {VerifyInstance{tripleState(0, 0), {}}},
                                Opts);
  EXPECT_TRUE(R.Holds);
  EXPECT_EQ(R.InstancesChecked, 0u);
}

TEST(VerifierTest, SafetyViolationSurfaces) {
  TripleWorld W = makeTripleWorld(0);
  GlobalState Missing;
  Missing.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
                   false);
  Missing.addLabel(Ct, PCMType::nat(), Heap(), PCMVal::ofNat(0), false);
  Spec S;
  S.Name = "unsafe";
  S.C = W.C;
  S.Pre = assertTrue();
  S.PostName = "any";
  S.Post = [](const Val &, const View &, const View &) { return true; };
  EngineOptions Opts;
  Opts.Ambient = W.C;
  Opts.CheckStepCoherence = false;
  Opts.Defs = &W.Defs;
  VerifyResult R = verifyTriple(Prog::act(W.Incr, {}), S,
                                {VerifyInstance{Missing, {}}}, Opts);
  EXPECT_FALSE(R.Holds);
  EXPECT_NE(R.FailureNote.find("safety violation"), std::string::npos);
}
