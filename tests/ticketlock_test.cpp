//===- tests/ticketlock_test.cpp - Ticketed-lock case-study tests ----------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "structures/CgIncrement.h"
#include "structures/TicketLock.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Lk = 2;

LockProtocol protocolUnderTest() {
  return makeTicketLock(Pv, Lk, counterResourceModel(Lk, /*EnvCap=*/1));
}

GlobalState initialState(const LockProtocol &P) {
  GlobalState GS;
  GS.addLabel(P.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              false);
  GS.addLabel(P.Lk, PCMType::pairOf(PCMType::ptrSet(), PCMType::nat()),
              P.InitialJoint(Heap::singleton(counterResourceCell(),
                                             Val::ofInt(0))),
              PCMVal::makePair(PCMVal::ofPtrSet({}), PCMVal::ofNat(0)),
              false);
  return GS;
}
} // namespace

TEST(TicketLockTest, LockProgramAcquiresViaTicket) {
  LockProtocol P = protocolUnderTest();
  DefTable Defs;
  P.DefineLock(Defs, "lock");
  ASSERT_TRUE(Defs.contains("lock"));
  ASSERT_TRUE(Defs.contains("lock_wait"));

  EngineOptions Opts;
  Opts.Ambient = P.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Defs;
  RunResult R = explore(Prog::call("lock", {}), initialState(P), Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_TRUE(P.HoldsLock(R.Terminals[0].FinalView));
  // The resource moved into the private heap.
  EXPECT_TRUE(R.Terminals[0].FinalView.self(P.Pv).getHeap().contains(
      counterResourceCell()));
}

TEST(TicketLockTest, NoLockWithoutTicket) {
  LockProtocol P = protocolUnderTest();
  GlobalState GS = initialState(P);
  View Pre = GS.viewFor(rootThread());
  EXPECT_FALSE(P.HoldsLock(Pre));
  // Unlock without being served is unsafe.
  ActionRef Unlock = P.MakeUnlock(
      "unlock_id", 0,
      [](const View &,
         const std::vector<Val> &) -> std::optional<std::pair<Heap, PCMVal>> {
        return std::make_pair(Heap(), PCMVal::ofNat(0));
      });
  EXPECT_FALSE(Unlock->step(Pre, {}).has_value());
}

TEST(TicketLockTest, SessionDischargesAllObligations) {
  VerificationSession Session = makeTicketLockSession();
  SessionReport Report = Session.run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
  EXPECT_GT(Report.PerCategory[size_t(ObCategory::Stab)].Obligations, 0u);
}
