//===- tests/pairsnapshot_test.cpp - Pair snapshot tests -------------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "structures/PairSnapshot.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Rp = 1;
} // namespace

TEST(PairSnapshotTest, WritesBumpVersionsAndHistory) {
  PairSnapCase Case = makePairSnapCase(Rp, /*EnvHistCap=*/0);
  GlobalState GS = pairSnapState(Case);
  View Pre = GS.viewFor(rootThread());

  auto W = Case.WriteX->step(Pre, {Val::ofInt(5)});
  ASSERT_TRUE(W.has_value());
  const View &Post = (*W)[0].Post;
  const Val &CellX = Post.joint(Rp).lookup(Case.CellX);
  EXPECT_EQ(CellX.first().getInt(), 5);
  EXPECT_EQ(CellX.second().getInt(), 1); // Version bumped.
  EXPECT_EQ(Post.self(Rp).getHist().size(), 1u);
  EXPECT_TRUE(Case.C->coherent(Post));
}

TEST(PairSnapshotTest, ReadsAreIdle) {
  PairSnapCase Case = makePairSnapCase(Rp, 0);
  View Pre = pairSnapState(Case).viewFor(rootThread());
  auto R = Case.ReadX->step(Pre, {});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ((*R)[0].Post, Pre);
  EXPECT_EQ((*R)[0].Result, Val::pair(Val::ofInt(0), Val::ofInt(0)));
}

TEST(PairSnapshotTest, ReadPairWithoutInterference) {
  PairSnapCase Case = makePairSnapCase(Rp, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(Prog::call("readPair", {}), pairSnapState(Case),
                        Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result,
            Val::pair(Val::ofInt(0), Val::ofInt(0)));
}

TEST(PairSnapshotTest, ReadPairConsistentUnderInterference) {
  PairSnapCase Case = makePairSnapCase(Rp, /*EnvHistCap=*/2);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(Prog::call("readPair", {}), pairSnapState(Case),
                        Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  EXPECT_GT(R.Terminals.size(), 1u); // Interference is visible...
  for (const Terminal &T : R.Terminals) {
    // ...but never as an inconsistent mix: the returned pair must appear
    // in the final combined history's state chain.
    std::optional<History> Full = History::join(
        T.FinalView.self(Rp).getHist(), T.FinalView.other(Rp).getHist());
    ASSERT_TRUE(Full.has_value());
    std::vector<Val> States = {Val::pair(Val::ofInt(0), Val::ofInt(0))};
    for (const auto &Entry : *Full)
      States.push_back(Entry.second.After);
    bool Found = false;
    for (const Val &S : States)
      Found |= S == T.Result;
    EXPECT_TRUE(Found) << T.Result.toString();
  }
}

TEST(PairSnapshotTest, SessionPasses) {
  SessionReport Report = makePairSnapshotSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
}
