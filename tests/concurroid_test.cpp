//===- tests/concurroid_test.cpp - Concurroid layer tests ------------------===//
//
// Part of fcsl-cpp. Exercises the STS layer on a toy "counter" concurroid
// plus Priv, entanglement, the registry and the metatheory checks —
// including negative cases where an ill-formed concurroid is rejected.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Entangle.h"
#include "concurroid/Metatheory.h"
#include "concurroid/Priv.h"
#include "concurroid/Registry.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label Ct = 3;
constexpr Label Pv = 1;

/// A toy concurroid: joint cell &1 holds the sum of all contributions
/// (nat PCM); one transition bumps the counter.
ConcurroidRef makeCounter(bool BuggyTransition = false) {
  auto Coh = [](const View &S) {
    if (!S.hasLabel(Ct) || S.self(Ct).kind() != PCMKind::Nat ||
        S.other(Ct).kind() != PCMKind::Nat)
      return false;
    const Val *Cell = S.joint(Ct).tryLookup(Ptr(1));
    if (!Cell || !Cell->isInt() || S.joint(Ct).size() != 1)
      return false;
    return Cell->getInt() ==
           static_cast<int64_t>(S.self(Ct).getNat() +
                                S.other(Ct).getNat());
  };
  auto C = makeConcurroid("Counter", {OwnedLabel{Ct, "ct",
                                                 PCMType::nat()}},
                          Coh);
  C->addTransition(Transition(
      "bump", TransitionKind::Internal,
      [BuggyTransition](const View &Pre) -> std::vector<View> {
        if (!Pre.hasLabel(Ct))
          return {};
        const Val *Cell = Pre.joint(Ct).tryLookup(Ptr(1));
        if (!Cell || Cell->getInt() >= 3)
          return {};
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(Ptr(1), Val::ofInt(Cell->getInt() + 1));
        Post.setJoint(Ct, std::move(Joint));
        // The buggy variant "forgets" to bump the auxiliary self, which
        // breaks coherence preservation.
        if (!BuggyTransition)
          Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return {Post};
      }));
  return C;
}

View counterView(uint64_t Mine, uint64_t Theirs) {
  View S;
  S.addLabel(Ct, LabelSlice{PCMVal::ofNat(Mine),
                            Heap::singleton(
                                Ptr(1), Val::ofInt(static_cast<int64_t>(
                                            Mine + Theirs))),
                            PCMVal::ofNat(Theirs)});
  return S;
}

std::vector<View> counterSamples() {
  std::vector<View> Out;
  for (uint64_t M = 0; M <= 2; ++M)
    for (uint64_t T = 0; T <= 2; ++T)
      Out.push_back(counterView(M, T));
  return Out;
}

} // namespace

TEST(ConcurroidTest, CoherenceAndLabels) {
  ConcurroidRef C = makeCounter();
  EXPECT_EQ(C->name(), "Counter");
  EXPECT_EQ(C->labelIds(), std::vector<Label>{Ct});
  EXPECT_TRUE(C->coherent(counterView(1, 2)));
  View Bad = counterView(1, 2);
  Bad.setJoint(Ct, Heap::singleton(Ptr(1), Val::ofInt(99)));
  EXPECT_FALSE(C->coherent(Bad));
}

TEST(ConcurroidTest, IdleTransitionAlwaysPresent) {
  ConcurroidRef C = makeCounter();
  ASSERT_FALSE(C->transitions().empty());
  EXPECT_EQ(C->transitions().front().name(), "idle");
  View S = counterView(0, 0);
  EXPECT_TRUE(C->someTransitionCovers(S, S));
}

TEST(ConcurroidTest, EnvSuccessorsAreSubjective) {
  ConcurroidRef C = makeCounter();
  View S = counterView(1, 0);
  std::vector<View> Succs = C->envSuccessors(S);
  ASSERT_EQ(Succs.size(), 1u);
  // The environment bumped: my self is untouched, other grew.
  EXPECT_EQ(Succs[0].self(Ct).getNat(), 1u);
  EXPECT_EQ(Succs[0].other(Ct).getNat(), 1u);
  EXPECT_EQ(Succs[0].joint(Ct).lookup(Ptr(1)).getInt(), 2);
}

TEST(ConcurroidTest, InvertSwapsRoles) {
  ConcurroidRef C = makeCounter();
  View S = counterView(1, 2);
  View Inv = C->invert(S);
  EXPECT_EQ(Inv.self(Ct).getNat(), 2u);
  EXPECT_EQ(Inv.other(Ct).getNat(), 1u);
  EXPECT_EQ(C->invert(Inv), S);
}

TEST(MetatheoryTest, WellFormedCounterPasses) {
  ConcurroidRef C = makeCounter();
  MetaReport R = checkConcurroidWellFormed(*C, counterSamples());
  EXPECT_TRUE(R.Passed) << R.CounterExample;
  EXPECT_GT(R.ChecksRun, 0u);
}

TEST(MetatheoryTest, BuggyTransitionCaught) {
  ConcurroidRef C = makeCounter(/*BuggyTransition=*/true);
  MetaReport R = checkTransitionsPreserveCoherence(*C, counterSamples());
  EXPECT_FALSE(R.Passed);
  EXPECT_FALSE(R.CounterExample.empty());
}

TEST(MetatheoryTest, ForkJoinClosureHolds) {
  ConcurroidRef C = makeCounter();
  MetaReport R = checkForkJoinClosure(*C, counterSamples());
  EXPECT_TRUE(R.Passed) << R.CounterExample;
}

TEST(MetatheoryTest, ForkJoinClosureCatchesSelfDependentCoherence) {
  // A concurroid whose coherence depends on the self/other *split* (not
  // just their join) is not fork-join closed.
  auto Coh = [](const View &S) {
    return S.hasLabel(Ct) && S.self(Ct).kind() == PCMKind::Nat &&
           S.other(Ct).kind() == PCMKind::Nat &&
           S.self(Ct).getNat() == 1;
  };
  auto C = makeConcurroid("SplitSensitive",
                          {OwnedLabel{Ct, "ct", PCMType::nat()}}, Coh);
  View S;
  S.addLabel(Ct, LabelSlice{PCMVal::ofNat(1), Heap(), PCMVal::ofNat(0)});
  MetaReport R = checkForkJoinClosure(*C, {S});
  EXPECT_FALSE(R.Passed);
}

TEST(PrivTest, CoherenceAndLocality) {
  ConcurroidRef P = makePriv(Pv);
  View S;
  S.addLabel(Pv, LabelSlice{PCMVal::ofHeap(Heap::singleton(Ptr(1),
                                                           Val::unit())),
                            Heap(), PCMVal::ofHeap(Heap())});
  EXPECT_TRUE(P->coherent(S));
  EXPECT_EQ(pvSelfHeap(S, Pv).size(), 1u);
  // Non-empty joint is incoherent for Priv.
  View Bad = S;
  Bad.setJoint(Pv, Heap::singleton(Ptr(2), Val::unit()));
  EXPECT_FALSE(P->coherent(Bad));
  // Priv generates no interference.
  EXPECT_TRUE(P->envSuccessors(S).empty());
}

TEST(PrivTest, LocalStepsCovered) {
  ConcurroidRef P = makePriv(Pv);
  View Pre;
  Pre.addLabel(Pv, LabelSlice{PCMVal::ofHeap(Heap()), Heap(),
                              PCMVal::ofHeap(Heap())});
  View Post = Pre;
  Post.setSelf(Pv, PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(3))));
  EXPECT_TRUE(P->someTransitionCovers(Pre, Post));
}

TEST(EntangleTest, ProductCoherenceAndTransitions) {
  ConcurroidRef P = makePriv(Pv);
  ConcurroidRef C = makeCounter();
  ConcurroidRef E = entangle(P, C);
  EXPECT_EQ(E->name(), "Priv >< Counter");
  EXPECT_EQ(E->ownedLabels().size(), 2u);

  View S = counterView(1, 1);
  S.addLabel(Pv, LabelSlice{PCMVal::ofHeap(Heap()), Heap(),
                            PCMVal::ofHeap(Heap())});
  EXPECT_TRUE(E->coherent(S));
  // Both constituents' transitions are present (plus one idle).
  size_t Names = 0;
  for (const Transition &T : E->transitions())
    if (T.name() == "bump" || T.name() == "priv_local")
      ++Names;
  EXPECT_EQ(Names, 2u);
}

TEST(RegistryTest, Table2AndFigure5Shapes) {
  Registry R;
  R.registerLibrary(LibraryInfo{
      "Lib A", {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true}},
      {}});
  R.registerLibrary(LibraryInfo{"Iface", {}, {"Lib A"}});
  R.registerLibrary(LibraryInfo{
      "Lib B", {ConcurroidUse{"Priv", false}}, {"Iface"}});

  std::string Table = R.renderTable2();
  EXPECT_NE(Table.find("Lib A"), std::string::npos);
  EXPECT_NE(Table.find("3L"), std::string::npos);
  EXPECT_EQ(Table.find("Iface"), std::string::npos); // Interface-only.

  DotGraph G = R.dependencyGraph();
  EXPECT_TRUE(G.isAcyclic());
  // Edge direction: dependency -> user.
  bool Found = false;
  for (const auto &E : G.edges())
    Found |= E.first == "Iface" && E.second == "Lib B";
  EXPECT_TRUE(Found);
}

TEST(RegistryTest, ReregistrationReplaces) {
  Registry R;
  R.registerLibrary(LibraryInfo{"X", {ConcurroidUse{"A", false}}, {}});
  R.registerLibrary(LibraryInfo{"X", {ConcurroidUse{"B", false}}, {}});
  ASSERT_EQ(R.libraries().size(), 1u);
  EXPECT_EQ(R.libraries()[0].Uses[0].Concurroid, "B");
}
