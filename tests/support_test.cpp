//===- tests/support_test.cpp - Support utilities tests --------------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "support/Dot.h"
#include "support/Format.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <thread>

using namespace fcsl;

TEST(FormatTest, FormatString) {
  EXPECT_EQ(formatString("x=%d", 42), "x=42");
  EXPECT_EQ(formatString("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(formatString("none"), "none");
  // Long outputs are not truncated.
  std::string Long(500, 'y');
  EXPECT_EQ(formatString("%s", Long.c_str()).size(), 500u);
}

TEST(FormatTest, JoinAndPad) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ", "), "");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("abcd", 2), "abcd");
}

TEST(FormatTest, TextTableRendering) {
  TextTable T;
  T.setHeader({"Name", "Count"});
  T.setRightAligned(1);
  T.addRow({"alpha", "1"});
  T.addRow({"b", "100"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Right-aligned numeric column.
  EXPECT_NE(Out.find("    1"), std::string::npos);
  // Header separator present.
  EXPECT_NE(Out.find("-----"), std::string::npos);
}

TEST(DotTest, RenderAndAcyclicity) {
  DotGraph G("test");
  G.addEdge("A", "B");
  G.addEdge("B", "C");
  EXPECT_TRUE(G.isAcyclic());
  std::string Dot = G.render();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("\"A\" -> \"B\""), std::string::npos);

  G.addEdge("C", "A");
  EXPECT_FALSE(G.isAcyclic());
}

TEST(DotTest, AsciiAdjacency) {
  DotGraph G("test");
  G.addEdge("A", "C");
  G.addEdge("A", "B");
  G.addNode("D");
  std::string Ascii = G.renderAscii();
  EXPECT_NE(Ascii.find("A -> B, C"), std::string::npos);
  EXPECT_NE(Ascii.find("D"), std::string::npos);
}

TEST(RngTest, DeterministicAndBounded) {
  Rng A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(9);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(C.nextBelow(10), 10u);
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool Different = false;
  for (int I = 0; I < 10 && !Different; ++I)
    Different = A.next() != B.next();
  EXPECT_TRUE(Different);
}

TEST(StatsTest, CountersMerge) {
  StatBag A, B;
  A.add("x");
  A.add("x", 2);
  B.add("y", 5);
  A.merge(B);
  EXPECT_EQ(A.get("x"), 3u);
  EXPECT_EQ(A.get("y"), 5u);
  EXPECT_EQ(A.get("z"), 0u);
}

TEST(StatsTest, TimerAdvances) {
  Timer T;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(T.elapsedMs(), 0.0);
}

TEST(HashingTest, CombineIsOrderSensitive) {
  size_t A = 0, B = 0;
  hashValue(A, 1);
  hashValue(A, 2);
  hashValue(B, 2);
  hashValue(B, 1);
  EXPECT_NE(A, B);
}
