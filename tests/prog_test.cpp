//===- tests/prog_test.cpp - Program AST tests -----------------------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "prog/Prog.h"

#include <gtest/gtest.h>

using namespace fcsl;

TEST(ExprTest, Literals) {
  VarEnv Env;
  EXPECT_EQ(Expr::unit()->eval(Env), Val::unit());
  EXPECT_EQ(Expr::litInt(5)->eval(Env), Val::ofInt(5));
  EXPECT_EQ(Expr::litBool(true)->eval(Env), Val::ofBool(true));
  EXPECT_EQ(Expr::litPtr(Ptr(2))->eval(Env), Val::ofPtr(Ptr(2)));
}

TEST(ExprTest, VariablesAndOps) {
  VarEnv Env;
  Env["x"] = Val::ofInt(3);
  Env["p"] = Val::ofPtr(Ptr());
  EXPECT_EQ(Expr::var("x")->eval(Env), Val::ofInt(3));
  EXPECT_EQ(Expr::add(Expr::var("x"), Expr::litInt(4))->eval(Env),
            Val::ofInt(7));
  EXPECT_EQ(Expr::lt(Expr::var("x"), Expr::litInt(4))->eval(Env),
            Val::ofBool(true));
  EXPECT_EQ(Expr::isNull(Expr::var("p"))->eval(Env), Val::ofBool(true));
  EXPECT_EQ(Expr::eq(Expr::var("x"), Expr::litInt(3))->eval(Env),
            Val::ofBool(true));
  EXPECT_EQ(Expr::notE(Expr::litBool(false))->eval(Env),
            Val::ofBool(true));
}

TEST(ExprTest, PairsAndProjections) {
  VarEnv Env;
  ExprRef P = Expr::mkPair(Expr::litInt(1), Expr::litBool(true));
  EXPECT_EQ(Expr::fst(P)->eval(Env), Val::ofInt(1));
  EXPECT_EQ(Expr::snd(P)->eval(Env), Val::ofBool(true));
}

TEST(ExprTest, ToString) {
  EXPECT_EQ(Expr::var("x")->toString(), "x");
  EXPECT_EQ(Expr::notE(Expr::var("b"))->toString(), "~~b");
  EXPECT_EQ(Expr::isNull(Expr::var("p"))->toString(), "(p == null)");
  EXPECT_EQ(Expr::fst(Expr::var("rs"))->toString(), "rs.1");
}

TEST(ProgTest, BuildersAndAccessors) {
  ProgRef R = Prog::ret(Expr::litInt(1));
  EXPECT_EQ(R->kind(), Prog::Kind::Ret);
  ProgRef B = Prog::bind(R, "x", Prog::ret(Expr::var("x")));
  EXPECT_EQ(B->kind(), Prog::Kind::Bind);
  EXPECT_EQ(B->bindVar(), "x");
  ProgRef S = Prog::seq(R, R);
  EXPECT_EQ(S->bindVar(), "_");
  ProgRef I = Prog::ifThenElse(Expr::litBool(true), R, S);
  EXPECT_EQ(I->kind(), Prog::Kind::If);
  ProgRef P = Prog::par(R, R);
  EXPECT_EQ(P->kind(), Prog::Kind::Par);
  ProgRef C = Prog::call("f", {Expr::litInt(1)});
  EXPECT_EQ(C->callee(), "f");
}

TEST(ProgTest, PrettyPrinting) {
  ProgRef P = Prog::bind(Prog::ret(Expr::litInt(1)), "x",
                         Prog::ret(Expr::var("x")));
  std::string S = P->toString();
  EXPECT_NE(S.find("x <--"), std::string::npos);
  EXPECT_NE(S.find("ret x"), std::string::npos);

  ProgRef I = Prog::ifThenElse(Expr::var("b"), Prog::retUnit(),
                               Prog::call("loop", {}));
  EXPECT_NE(I->toString().find("if b then"), std::string::npos);
}

TEST(DefTableTest, DefineAndLookup) {
  DefTable Defs;
  EXPECT_FALSE(Defs.contains("f"));
  Defs.define("f", FuncDef{{"a"}, Prog::ret(Expr::var("a"))});
  EXPECT_TRUE(Defs.contains("f"));
  EXPECT_EQ(Defs.lookup("f").Params.size(), 1u);
  // Redefinition replaces.
  Defs.define("f", FuncDef{{"a", "b"}, Prog::retUnit()});
  EXPECT_EQ(Defs.lookup("f").Params.size(), 2u);
}
