//===- tests/heap_test.cpp - Heap model tests ------------------------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"

#include <gtest/gtest.h>

using namespace fcsl;

TEST(PtrTest, NullAndIds) {
  EXPECT_TRUE(Ptr().isNull());
  EXPECT_TRUE(Ptr::null().isNull());
  EXPECT_FALSE(Ptr(3).isNull());
  EXPECT_EQ(Ptr(3).id(), 3u);
  EXPECT_EQ(Ptr().toString(), "null");
  EXPECT_EQ(Ptr(7).toString(), "&7");
  EXPECT_LT(Ptr(1), Ptr(2));
}

TEST(ValTest, KindsAndAccessors) {
  EXPECT_TRUE(Val::unit().isUnit());
  EXPECT_EQ(Val::ofInt(-3).getInt(), -3);
  EXPECT_TRUE(Val::ofBool(true).getBool());
  EXPECT_EQ(Val::ofPtr(Ptr(4)).getPtr(), Ptr(4));
  Val N = Val::node(true, Ptr(1), Ptr(2));
  EXPECT_TRUE(N.getNode().Marked);
  EXPECT_EQ(N.getNode().Left, Ptr(1));
  Val P = Val::pair(Val::ofInt(1), Val::ofBool(false));
  EXPECT_EQ(P.first().getInt(), 1);
  EXPECT_FALSE(P.second().getBool());
}

TEST(ValTest, TotalOrderAndEquality) {
  EXPECT_EQ(Val::ofInt(5), Val::ofInt(5));
  EXPECT_NE(Val::ofInt(5), Val::ofInt(6));
  EXPECT_NE(Val::ofInt(0), Val::ofBool(false));
  EXPECT_LT(Val::unit(), Val::ofInt(0)); // Kind tag order.
  Val A = Val::pair(Val::ofInt(1), Val::ofInt(2));
  Val B = Val::pair(Val::ofInt(1), Val::ofInt(3));
  EXPECT_LT(A, B);
  EXPECT_EQ(A, Val::pair(Val::ofInt(1), Val::ofInt(2)));
}

TEST(ValTest, HashingAgreesWithEquality) {
  Val A = Val::pair(Val::ofInt(1), Val::ofPtr(Ptr(2)));
  Val B = Val::pair(Val::ofInt(1), Val::ofPtr(Ptr(2)));
  EXPECT_EQ(std::hash<Val>{}(A), std::hash<Val>{}(B));
}

TEST(ValTest, ToString) {
  EXPECT_EQ(Val::unit().toString(), "()");
  EXPECT_EQ(Val::ofInt(9).toString(), "9");
  EXPECT_EQ(Val::ofBool(false).toString(), "false");
  EXPECT_EQ(Val::node(false, Ptr(1), Ptr()).toString(), "{u, &1, null}");
  EXPECT_EQ(Val::pair(Val::ofInt(1), Val::unit()).toString(), "(1, ())");
}

TEST(HeapTest, InsertLookupUpdateRemove) {
  Heap H;
  EXPECT_TRUE(H.isEmpty());
  H.insert(Ptr(1), Val::ofInt(10));
  H.insert(Ptr(3), Val::ofInt(30));
  EXPECT_EQ(H.size(), 2u);
  EXPECT_TRUE(H.contains(Ptr(1)));
  EXPECT_FALSE(H.contains(Ptr(2)));
  EXPECT_EQ(H.lookup(Ptr(3)).getInt(), 30);
  EXPECT_EQ(H.tryLookup(Ptr(2)), nullptr);
  H.update(Ptr(1), Val::ofInt(11));
  EXPECT_EQ(H.lookup(Ptr(1)).getInt(), 11);
  H.remove(Ptr(1));
  EXPECT_FALSE(H.contains(Ptr(1)));
}

TEST(HeapTest, DomainSortedAndFreshPtr) {
  Heap H;
  H.insert(Ptr(2), Val::unit());
  H.insert(Ptr(1), Val::unit());
  H.insert(Ptr(5), Val::unit());
  std::vector<Ptr> Dom = H.domain();
  ASSERT_EQ(Dom.size(), 3u);
  EXPECT_EQ(Dom[0], Ptr(1));
  EXPECT_EQ(Dom[2], Ptr(5));
  // Smallest absent id.
  EXPECT_EQ(H.freshPtr(), Ptr(3));
  EXPECT_EQ(Heap().freshPtr(), Ptr(1));
}

TEST(HeapTest, DisjointUnionIsPartial) {
  Heap A = Heap::singleton(Ptr(1), Val::ofInt(1));
  Heap B = Heap::singleton(Ptr(2), Val::ofInt(2));
  std::optional<Heap> AB = Heap::join(A, B);
  ASSERT_TRUE(AB.has_value());
  EXPECT_EQ(AB->size(), 2u);
  // Overlap is undefined.
  EXPECT_FALSE(Heap::join(A, A).has_value());
  EXPECT_TRUE(Heap::disjoint(A, B));
  EXPECT_FALSE(Heap::disjoint(A, A));
}

TEST(HeapTest, JoinWithEmptyIsIdentity) {
  Heap A = Heap::singleton(Ptr(1), Val::ofInt(1));
  std::optional<Heap> R = Heap::join(A, Heap());
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, A);
}

TEST(HeapTest, WithoutAndCompare) {
  Heap A;
  A.insert(Ptr(1), Val::ofInt(1));
  A.insert(Ptr(2), Val::ofInt(2));
  Heap B = A.without({Ptr(1)});
  EXPECT_EQ(B.size(), 1u);
  EXPECT_TRUE(B.contains(Ptr(2)));
  EXPECT_NE(A, B);
  EXPECT_EQ(A.compare(A), 0);
  EXPECT_NE(A.compare(B), 0);
}

TEST(HeapTest, ToStringShape) {
  Heap H = Heap::singleton(Ptr(1), Val::ofInt(5));
  EXPECT_EQ(H.toString(), "{&1 :-> 5}");
  EXPECT_EQ(Heap().toString(), "{}");
}
