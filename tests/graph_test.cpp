//===- tests/graph_test.cpp - Graph predicates and lemma tests -------------===//
//
// Part of fcsl-cpp. Unit tests for the Section 3.2 predicates plus
// parameterized property sweeps of the key lemmas over random graphs.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphGen.h"
#include "graph/GraphPredicates.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

Heap chainGraph() {
  // 1 -> 2 -> 3 (left successors only).
  return buildGraph({GraphNode{Ptr(1), Ptr(2), Ptr::null()},
                     GraphNode{Ptr(2), Ptr(3), Ptr::null()},
                     GraphNode{Ptr(3), Ptr::null(), Ptr::null()}});
}

} // namespace

TEST(HeapGraphTest, WellFormedness) {
  EXPECT_TRUE(isGraphHeap(chainGraph()));
  EXPECT_TRUE(isGraphHeap(figure2Graph()));
  EXPECT_TRUE(isGraphHeap(Heap()));
  // Dangling successor.
  Heap Bad;
  Bad.insert(Ptr(1), Val::node(false, Ptr(9), Ptr::null()));
  EXPECT_FALSE(isGraphHeap(Bad));
  // Non-node cell.
  Heap NotNode = Heap::singleton(Ptr(1), Val::ofInt(3));
  EXPECT_FALSE(isGraphHeap(NotNode));
}

TEST(HeapGraphTest, AccessorsDefaultOutsideHeap) {
  Heap G = chainGraph();
  EXPECT_FALSE(nodeMarked(G, Ptr(1)));
  EXPECT_FALSE(nodeMarked(G, Ptr(77)));
  EXPECT_EQ(succOf(G, Ptr(1), Side::Left), Ptr(2));
  EXPECT_EQ(succOf(G, Ptr(77), Side::Left), Ptr::null());
  EXPECT_EQ(nodeCont(G, Ptr(77)).Left, Ptr::null());
}

TEST(HeapGraphTest, EdgesAndTransformers) {
  Heap G = chainGraph();
  EXPECT_TRUE(hasEdge(G, Ptr(1), Ptr(2)));
  EXPECT_FALSE(hasEdge(G, Ptr(2), Ptr(1)));
  EXPECT_EQ(succsOf(G, Ptr(1)), std::vector<Ptr>{Ptr(2)});

  Heap Marked = markNode(G, Ptr(2));
  EXPECT_TRUE(nodeMarked(Marked, Ptr(2)));
  EXPECT_FALSE(nodeMarked(G, Ptr(2))); // Pure transformer.
  EXPECT_EQ(markedNodes(Marked), PtrSet{Ptr(2)});

  Heap Cut = nullEdge(G, Ptr(1), Side::Left);
  EXPECT_FALSE(hasEdge(Cut, Ptr(1), Ptr(2)));
}

TEST(GraphPredicatesTest, TreeRecognition) {
  Heap G = figure2Graph();
  // {d} is a leaf tree; {b, d, e} is a tree rooted at b.
  EXPECT_TRUE(isTreeIn(G, Ptr(4), {Ptr(4)}));
  EXPECT_TRUE(isTreeIn(G, Ptr(2), {Ptr(2), Ptr(4), Ptr(5)}));
  // Root must belong to the set.
  EXPECT_FALSE(isTreeIn(G, Ptr(1), {Ptr(2)}));
  // The full Figure 2 graph is NOT a tree from a: e is reachable both
  // via b and via c.
  PtrSet All = {Ptr(1), Ptr(2), Ptr(3), Ptr(4), Ptr(5)};
  EXPECT_FALSE(isTreeIn(G, Ptr(1), All));
}

TEST(GraphPredicatesTest, FrontAndMaximal) {
  Heap G = figure2Graph();
  // front({b}) includes d and e.
  EXPECT_TRUE(isFront(G, {Ptr(2)}, {Ptr(2), Ptr(4), Ptr(5)}));
  EXPECT_FALSE(isFront(G, {Ptr(2)}, {Ptr(2), Ptr(4)}));
  // {d, e} is maximal (leaves); {b, d} is not (edge to e).
  EXPECT_TRUE(isMaximal(G, {Ptr(4), Ptr(5)}));
  EXPECT_FALSE(isMaximal(G, {Ptr(2), Ptr(4)}));
}

TEST(GraphPredicatesTest, ReachabilityAndConnectivity) {
  Heap G = figure2Graph();
  EXPECT_TRUE(isConnectedFrom(G, Ptr(1)));
  EXPECT_FALSE(isConnectedFrom(G, Ptr(2)));
  PtrSet FromB = reachableFrom(G, Ptr(2));
  EXPECT_EQ(FromB, (PtrSet{Ptr(2), Ptr(4), Ptr(5)}));
  EXPECT_TRUE(reachableFrom(G, Ptr(99)).empty());
}

TEST(GraphPredicatesTest, SubgraphEvolution) {
  Heap G1 = figure2Graph();
  Heap G2 = markNode(G1, Ptr(1));
  EXPECT_TRUE(isSubgraphEvolution(G1, G2));
  Heap G3 = nullEdge(G2, Ptr(1), Side::Right);
  EXPECT_TRUE(isSubgraphEvolution(G1, G3));
  // Un-marking violates evolution.
  EXPECT_FALSE(isSubgraphEvolution(G2, G1));
  // Nullifying an *unmarked* node's edge changes its content: violation.
  Heap G4 = nullEdge(G1, Ptr(2), Side::Left);
  EXPECT_FALSE(isSubgraphEvolution(G1, G4));
  // Domain changes are violations.
  Heap G5 = G1;
  G5.remove(Ptr(5));
  EXPECT_FALSE(isSubgraphEvolution(G1, G5));
}

TEST(GraphGenTest, Figure2Shape) {
  Heap G = figure2Graph();
  EXPECT_EQ(G.size(), 5u);
  EXPECT_EQ(succOf(G, Ptr(1), Side::Left), Ptr(2));  // a -> b
  EXPECT_EQ(succOf(G, Ptr(1), Side::Right), Ptr(3)); // a -> c
  EXPECT_EQ(succOf(G, Ptr(3), Side::Right), Ptr(3)); // c's self loop
  EXPECT_EQ(figure2NodeName(Ptr(1)), "a");
  EXPECT_EQ(figure2NodeName(Ptr(5)), "e");
}

TEST(GraphGenTest, RandomGraphsWellFormed) {
  Rng R(123);
  for (int I = 0; I < 50; ++I) {
    Heap G = randomGraph(6, R, /*ConnectedFromRoot=*/false);
    EXPECT_EQ(G.size(), 6u);
    EXPECT_TRUE(isGraphHeap(G));
  }
}

TEST(GraphGenTest, ConnectedGraphsAreConnected) {
  Rng R(321);
  for (int I = 0; I < 50; ++I) {
    Heap G = randomGraph(5, R, /*ConnectedFromRoot=*/true);
    EXPECT_TRUE(isConnectedFrom(G, Ptr(1)));
  }
}

/// Property sweep: the max_tree2 lemma holds across random graphs and
/// subtree choices (seed-parameterized).
class GraphLemmaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphLemmaTest, MaxTree2Holds) {
  Rng R(GetParam());
  for (int Iter = 0; Iter < 40; ++Iter) {
    Heap G = randomGraph(5, R, false);
    for (const auto &Cell : G) {
      Ptr X = Cell.first;
      Ptr Y1 = Cell.second.getNode().Left;
      Ptr Y2 = Cell.second.getNode().Right;
      PtrSet T1 = Y1.isNull() ? PtrSet{} : reachableFrom(G, Y1);
      PtrSet T2 = Y2.isNull() ? PtrSet{} : reachableFrom(G, Y2);
      EXPECT_TRUE(lemmaMaxTree2(G, X, Y1, Y2, T1, T2))
          << "graph: " << G.toString() << " x=" << X.toString();
    }
  }
}

TEST_P(GraphLemmaTest, MaximalTreeSpans) {
  Rng R(GetParam() ^ 0xabcdef);
  for (int Iter = 0; Iter < 40; ++Iter) {
    Heap G = randomGraph(5, R, true);
    EXPECT_TRUE(lemmaMaximalTreeSpans(G, Ptr(1), reachableFrom(G, Ptr(1))));
  }
}

TEST_P(GraphLemmaTest, FrontOfReachableSetIsItself) {
  // reachableFrom always yields a maximal set.
  Rng R(GetParam() + 17);
  for (int Iter = 0; Iter < 40; ++Iter) {
    Heap G = randomGraph(5, R, false);
    for (const auto &Cell : G)
      EXPECT_TRUE(isMaximal(G, reachableFrom(G, Cell.first)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphLemmaTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));
