//===- tests/por_independence_test.cpp - Partial-order reduction -----------===//
//
// Part of fcsl-cpp. The footprint independence relation behind the
// engine's partial-order reduction (DESIGN.md §9), and the reduction's
// observational-equivalence contract: same Safe verdict, same sorted
// Terminals, same failure detection as the full exploration, bit-identical
// across job counts — with strictly fewer configurations where actions
// commute.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphGen.h"
#include "prog/Engine.h"
#include "structures/CgAllocator.h"
#include "structures/PairSnapshot.h"
#include "structures/SpanTree.h"
#include "structures/SpinLock.h"
#include "structures/TreiberStack.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label Pv = 1;
constexpr Label Sp = 2;
// SpanTree's graph-cell field masks (structures/SpanTree.cpp).
constexpr uint8_t FpLeft = 1;
constexpr uint8_t FpRight = 2;
constexpr uint8_t FpMarked = 4;

// The three-node graph with sharing and a cycle used throughout the
// spanning-tree tests: 1 -> (2, 3), 2 -> (3, null), 3 -> (1, null).
Heap threeNodeGraph() {
  return buildGraph({GraphNode{Ptr(1), Ptr(2), Ptr(3)},
                     GraphNode{Ptr(2), Ptr(3), Ptr::null()},
                     GraphNode{Ptr(3), Ptr(1), Ptr::null()}});
}

// A stack of diamonds: layer L is Id -> (Id+1, Id+2), both -> Id+3. Wide
// fork/join parallelism with heavy commuting, the reduction's best case.
Heap diamondOf(unsigned Layers) {
  std::vector<GraphNode> Nodes;
  uint32_t Id = 1;
  for (unsigned L = 0; L < Layers; ++L) {
    Nodes.push_back(GraphNode{Ptr(Id), Ptr(Id + 1), Ptr(Id + 2)});
    Nodes.push_back(GraphNode{Ptr(Id + 1), Ptr(Id + 3), Ptr::null()});
    Nodes.push_back(GraphNode{Ptr(Id + 2), Ptr(Id + 3), Ptr::null()});
    Id += 3;
  }
  Nodes.push_back(GraphNode{Ptr(Id), Ptr::null(), Ptr::null()});
  return buildGraph(Nodes);
}

bool sameTerminals(const RunResult &A, const RunResult &B) {
  if (A.Terminals.size() != B.Terminals.size())
    return false;
  for (size_t I = 0; I != A.Terminals.size(); ++I)
    if (A.Terminals[I] < B.Terminals[I] || B.Terminals[I] < A.Terminals[I])
      return false;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// The atom clash matrix.
//===----------------------------------------------------------------------===//

TEST(FpClashTest, DifferentLabelsNeverClash) {
  EXPECT_FALSE(fpAtomsClash(FpAtom::joint(1), FpAtom::joint(2)));
  EXPECT_FALSE(fpAtomsClash(FpAtom::selfAux(1), FpAtom::otherAux(2)));
}

TEST(FpClashTest, AuxAndJointAreDisjointComponents) {
  EXPECT_FALSE(fpAtomsClash(FpAtom::selfAux(Sp), FpAtom::joint(Sp)));
  EXPECT_FALSE(fpAtomsClash(FpAtom::otherAux(Sp), FpAtom::joint(Sp)));
}

TEST(FpClashTest, AuxComponentsAcrossAgents) {
  // Two agents' self contributions join in the PCM: frame-disjoint.
  EXPECT_FALSE(fpAtomsClash(FpAtom::selfAux(Sp), FpAtom::selfAux(Sp)));
  // X's self is part of Y's other, and two others share third parties.
  EXPECT_TRUE(fpAtomsClash(FpAtom::selfAux(Sp), FpAtom::otherAux(Sp)));
  EXPECT_TRUE(fpAtomsClash(FpAtom::otherAux(Sp), FpAtom::selfAux(Sp)));
  EXPECT_TRUE(fpAtomsClash(FpAtom::otherAux(Sp), FpAtom::otherAux(Sp)));
}

TEST(FpClashTest, AuxComponentsSameAgent) {
  // One agent touching the same component twice aliases itself; its self
  // and other components stay disjoint.
  EXPECT_TRUE(fpAtomsClash(FpAtom::selfAux(Sp), FpAtom::selfAux(Sp),
                           /*SameAgent=*/true));
  EXPECT_TRUE(fpAtomsClash(FpAtom::otherAux(Sp), FpAtom::otherAux(Sp),
                           /*SameAgent=*/true));
  EXPECT_FALSE(fpAtomsClash(FpAtom::selfAux(Sp), FpAtom::otherAux(Sp),
                            /*SameAgent=*/true));
}

TEST(FpClashTest, OwnershipRegionsAcrossAgents) {
  FpAtom Own = FpAtom::joint(Sp, FpFieldsAll, FpRegion::SelfOwned);
  FpAtom Unowned = FpAtom::joint(Sp, FpFieldsAll, FpRegion::Unowned);
  FpAtom Any = FpAtom::joint(Sp);
  // Different agents' owned regions are disjoint, and disjoint from the
  // unowned remainder; Any makes no claim.
  EXPECT_FALSE(fpAtomsClash(Own, Own));
  EXPECT_FALSE(fpAtomsClash(Own, Unowned));
  EXPECT_FALSE(fpAtomsClash(Unowned, Own));
  EXPECT_TRUE(fpAtomsClash(Own, Any));
  EXPECT_TRUE(fpAtomsClash(Any, Any));
}

TEST(FpClashTest, SelfOwnedSameAgentNamesOneRegion) {
  // The same agent's two SelfOwned touches may alias; refinement then
  // falls through to fields and cells.
  FpAtom OwnL = FpAtom::joint(Sp, FpLeft, FpRegion::SelfOwned);
  FpAtom OwnR = FpAtom::joint(Sp, FpRight, FpRegion::SelfOwned);
  EXPECT_TRUE(fpAtomsClash(OwnL, OwnL, /*SameAgent=*/true));
  EXPECT_FALSE(fpAtomsClash(OwnL, OwnR, /*SameAgent=*/true));
}

TEST(FpClashTest, DisjointFieldMasks) {
  EXPECT_FALSE(
      fpAtomsClash(FpAtom::joint(Sp, FpMarked), FpAtom::joint(Sp, FpLeft)));
  EXPECT_TRUE(fpAtomsClash(FpAtom::joint(Sp, FpMarked | FpLeft),
                           FpAtom::joint(Sp, FpLeft)));
}

TEST(FpClashTest, CellRefinements) {
  FpAtom C1 = FpAtom::jointCell(Sp, Ptr(1));
  FpAtom C2 = FpAtom::jointCell(Sp, Ptr(2));
  EXPECT_FALSE(fpAtomsClash(C1, C2));
  EXPECT_TRUE(fpAtomsClash(C1, C1));
  EXPECT_TRUE(fpAtomsClash(C1, FpAtom::joint(Sp))); // vs all cells.
}

//===----------------------------------------------------------------------===//
// Footprint independence on the real SpanTree actions.
//===----------------------------------------------------------------------===//

TEST(FpIndependenceTest, UnknownFootprintsAreDependentOnEverything) {
  Footprint Unknown;
  EXPECT_FALSE(Unknown.known());
  EXPECT_FALSE(fpIndependent(Unknown, Unknown));
  EXPECT_FALSE(fpIndependent(Unknown, Footprint::none()));
  // Two known-empty footprints commute trivially.
  EXPECT_TRUE(fpIndependent(Footprint::none(), Footprint::none()));
}

TEST(FpIndependenceTest, ReadsDoNotClashWithReads) {
  Footprint A = Footprint::none().read(FpAtom::joint(Sp, FpMarked));
  Footprint B = Footprint::none().read(FpAtom::joint(Sp, FpMarked));
  EXPECT_TRUE(fpIndependent(A, B));
  Footprint W = Footprint::none().write(FpAtom::joint(Sp, FpMarked));
  EXPECT_FALSE(fpIndependent(A, W));
}

TEST(FpIndependenceTest, TrymarksOnDistinctNodesCommute) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  GlobalState GS = spanOpenState(Case, threeNodeGraph(), {});
  View S = GS.viewFor(ThreadId(1));
  Footprint M1 = Case.TryMark->footprint(S, {Val::ofPtr(Ptr(1))});
  Footprint M2 = Case.TryMark->footprint(S, {Val::ofPtr(Ptr(2))});
  EXPECT_TRUE(fpIndependent(M1, M2));
  // The same node raced from two threads: the whole point of the CAS.
  EXPECT_FALSE(fpIndependent(M1, M1));
  // Marking a node vs reading an edge of another: disjoint fields.
  Footprint R2 = Case.ReadChildL->footprint(S, {Val::ofPtr(Ptr(2))});
  EXPECT_TRUE(fpIndependent(M2, R2));
}

TEST(FpIndependenceTest, StaticFootprintIsTheFallback) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  const Footprint &St = Case.TryMark->staticFootprint();
  ASSERT_TRUE(St.known());
  // The static footprint covers all cells, so two instances of it clash.
  EXPECT_FALSE(fpIndependent(St, St));
}

//===----------------------------------------------------------------------===//
// Observational equivalence of the reduced exploration.
//===----------------------------------------------------------------------===//

namespace {

EngineOptions openOpts(const SpanTreeCase &Case) {
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  Opts.Jobs = 1;
  return Opts;
}

EngineOptions closedOpts(const SpanTreeCase &Case) {
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  Opts.Jobs = 1;
  return Opts;
}

} // namespace

TEST(PorEquivalenceTest, OpenWorldSpanMatchesFullExploration) {
  // Open-world span under live environment interference, across root
  // arguments and pre-marked env sets: the reduced run must reproduce the
  // full run's verdict and its exact terminal set (including terminals
  // only reachable with env steps ordered around the final action).
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  Heap G = threeNodeGraph();
  for (Ptr X : {Ptr::null(), Ptr(1), Ptr(2)}) {
    for (const PtrSet &EnvMarked :
         {PtrSet{}, PtrSet{Ptr(3)}, PtrSet{Ptr(2), Ptr(3)}}) {
      ProgRef Main = Prog::call("span", {Expr::litPtr(X)});
      GlobalState GS = spanOpenState(Case, G, EnvMarked);
      EngineOptions Opts = openOpts(Case);
      Opts.Por = PorMode::Off;
      RunResult Full = explore(Main, GS, Opts);
      Opts.Por = PorMode::On;
      RunResult Red = explore(Main, GS, Opts);
      EXPECT_EQ(Full.Safe, Red.Safe);
      EXPECT_EQ(Full.Exhausted, Red.Exhausted);
      EXPECT_TRUE(sameTerminals(Full, Red))
          << "X=" << X.toString() << " |EnvMarked|=" << EnvMarked.size()
          << ": " << Full.Terminals.size() << " full vs "
          << Red.Terminals.size() << " reduced terminals";
      EXPECT_TRUE(Red.PorReduced);
      EXPECT_FALSE(Full.PorReduced);
    }
  }
}

TEST(PorEquivalenceTest, ClosedWorldDiamondReducesStateSpace) {
  // The fork/join diamond: massively commuting subtrees. The reduction
  // must preserve the terminals exactly and beat the acceptance bar of
  // half the full configuration count.
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  GlobalState GS = spanRootState(Case, diamondOf(2));
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts = closedOpts(Case);
  Opts.Por = PorMode::Off;
  RunResult Full = explore(Main, GS, Opts);
  Opts.Por = PorMode::On;
  RunResult Red = explore(Main, GS, Opts);
  ASSERT_TRUE(Full.Safe);
  ASSERT_TRUE(Red.Safe);
  EXPECT_TRUE(sameTerminals(Full, Red));
  EXPECT_LT(Red.ConfigsExplored, Full.ConfigsExplored);
  EXPECT_LE(2 * Red.ConfigsExplored, Full.ConfigsExplored)
      << Red.ConfigsExplored << " reduced vs " << Full.ConfigsExplored
      << " full configurations";
}

TEST(PorEquivalenceTest, ReducedRunIsBitIdenticalAcrossJobCounts) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  GlobalState GS = spanRootState(Case, diamondOf(2));
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts = closedOpts(Case);
  Opts.Por = PorMode::On;
  Opts.Jobs = 1;
  RunResult Serial = explore(Main, GS, Opts);
  ASSERT_TRUE(Serial.complete());
  for (unsigned Jobs : {2u, 8u}) {
    Opts.Jobs = Jobs;
    RunResult Par = explore(Main, GS, Opts);
    EXPECT_EQ(Serial.Safe, Par.Safe) << Jobs << " jobs";
    EXPECT_TRUE(sameTerminals(Serial, Par)) << Jobs << " jobs";
    EXPECT_EQ(Serial.ConfigsExplored, Par.ConfigsExplored) << Jobs << " jobs";
    EXPECT_EQ(Serial.ActionSteps, Par.ActionSteps) << Jobs << " jobs";
    EXPECT_EQ(Serial.EnvSteps, Par.EnvSteps) << Jobs << " jobs";
  }
}

TEST(PorEquivalenceTest, CheckModeCrossValidates) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  GlobalState GS = spanRootState(Case, diamondOf(1));
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts = closedOpts(Case);
  Opts.Por = PorMode::Check;
  RunResult R = explore(Main, GS, Opts);
  EXPECT_TRUE(R.Safe);
  EXPECT_TRUE(R.PorChecked);
  EXPECT_FALSE(R.PorMismatch);
  EXPECT_GT(R.ConfigsFull, 0u);
  EXPECT_GT(R.ConfigsReduced, 0u);
  EXPECT_LT(R.ConfigsReduced, R.ConfigsFull);
  // Check mode reports the *full* run (the ground truth), so its counters
  // and PorReduced flag describe the unreduced exploration.
  EXPECT_FALSE(R.PorReduced);
  EXPECT_EQ(R.ConfigsExplored, R.ConfigsFull);
}

TEST(PorEquivalenceTest, DefaultModeFollowsProcessDefault) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  GlobalState GS = spanRootState(Case, diamondOf(1));
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts = closedOpts(Case);
  Opts.Por = PorMode::Default;
  setDefaultPorMode(PorMode::On);
  RunResult R = explore(Main, GS, Opts);
  setDefaultPorMode(PorMode::Off);
  RunResult F = explore(Main, GS, Opts);
  EXPECT_TRUE(R.PorReduced);
  EXPECT_FALSE(F.PorReduced);
  EXPECT_TRUE(sameTerminals(R, F));
}

//===----------------------------------------------------------------------===//
// Failure preservation: reduction must not hide safety violations.
//===----------------------------------------------------------------------===//

TEST(PorFailureTest, RacyUnsafeActionStillDetected) {
  // An action that crashes when its node is already marked, raced against
  // trymark on the same node: unsafe only in the schedule where trymark
  // goes first. Both actions' footprints honestly name cell 1's Marked
  // field, so they are dependent and the reduction must keep both orders —
  // and report the violation, exactly like the full exploration.
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  ActionRef AssertUnmarked = makeAction(
      "assert_unmarked", Case.Open, 1,
      [](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr())
          return std::nullopt;
        Ptr X = Args[0].getPtr();
        const Heap &G = Pre.joint(Sp);
        if (!G.contains(X) || G.lookup(X).getNode().Marked)
          return std::nullopt; // Crashes once the environment marked x.
        return std::vector<ActOutcome>{{Val::unit(), Pre}};
      },
      Footprint::none().read(FpAtom::joint(Sp, FpMarked)),
      [](const View &, const std::vector<Val> &Args) -> Footprint {
        if (!Args[0].isPtr())
          return Footprint::none();
        return Footprint::none().read(
            FpAtom::jointCell(Sp, Args[0].getPtr(), FpMarked));
      });
  ProgRef Racy =
      Prog::par(Prog::act(Case.TryMark, {Expr::litPtr(Ptr(1))}),
                Prog::act(AssertUnmarked, {Expr::litPtr(Ptr(1))}));
  GlobalState GS = spanOpenState(Case, threeNodeGraph(), {});
  EngineOptions Opts = openOpts(Case);
  Opts.EnvInterference = false;
  Opts.CheckStepCoherence = false; // assert_unmarked is not a transition.
  Opts.Por = PorMode::Off;
  RunResult Full = explore(Racy, GS, Opts);
  Opts.Por = PorMode::On;
  RunResult Red = explore(Racy, GS, Opts);
  EXPECT_FALSE(Full.Safe);
  EXPECT_FALSE(Red.Safe) << "reduction hid the racy violation";
  EXPECT_NE(Red.FailureNote.find("assert_unmarked"), std::string::npos)
      << Red.FailureNote;
  EXPECT_FALSE(Red.FailureTrace.empty());
}

//===----------------------------------------------------------------------===//
// Footprints of the Table 1 structures: the independence facts that make
// reduction fire on Treiber stack, pair snapshot, and CG allocator, and
// engine-level pins that the reduction is strict on each of them.
//===----------------------------------------------------------------------===//

TEST(StructureFpTest, TreiberFailedCasShrinksToASentinelRead) {
  TreiberCase Case = makeTreiberCase(1, 2, /*EnvHistCap=*/3);
  GlobalState GS = treiberState(Case, {5}, /*MyCells=*/1, /*EnvCells=*/0);
  View S = GS.viewFor(rootThread());
  // Two concurrent head reads commute.
  const Footprint &RH = Case.ReadHead->staticFootprint();
  ASSERT_TRUE(RH.known());
  EXPECT_TRUE(fpIndependent(RH, RH));
  // The commit footprint rewrites the whole structure: dependent on reads.
  const Footprint &Commit = Case.TryPush->staticFootprint();
  ASSERT_TRUE(Commit.known());
  EXPECT_FALSE(fpIndependent(Commit, RH));
  EXPECT_FALSE(fpIndependent(Commit, Commit));
  // A CAS armed with a stale head snapshot (the list head is node 40, the
  // argument expects empty) only *observes* the sentinel: it commutes with
  // another failed CAS and with head reads.
  Footprint StalePush = Case.TryPush->footprint(
      S, {Val::ofPtr(Ptr(20)), Val::ofInt(1), Val::ofPtr(Ptr::null())});
  EXPECT_TRUE(fpIndependent(StalePush, StalePush));
  EXPECT_TRUE(fpIndependent(StalePush, RH));
  Footprint StalePop = Case.TryPop->footprint(S, {Val::ofPtr(Ptr(41))});
  EXPECT_TRUE(fpIndependent(StalePop, StalePush));
  // With the matching head the full commit footprint comes back.
  Footprint LivePush = Case.TryPush->footprint(
      S, {Val::ofPtr(Ptr(20)), Val::ofInt(1), Val::ofPtr(Ptr(40))});
  EXPECT_FALSE(fpIndependent(LivePush, RH));
}

TEST(StructureFpTest, SnapshotWritesToSiblingCellsAreDependent) {
  PairSnapCase Case = makePairSnapCase(1, /*EnvHistCap=*/2);
  const Footprint &RX = Case.ReadX->staticFootprint();
  const Footprint &RY = Case.ReadY->staticFootprint();
  const Footprint &WX = Case.WriteX->staticFootprint();
  const Footprint &WY = Case.WriteY->staticFootprint();
  ASSERT_TRUE(RX.known() && RY.known() && WX.known() && WY.known());
  // Reads of distinct cells commute with each other and with a write to
  // the *other* cell.
  EXPECT_TRUE(fpIndependent(RX, RY));
  EXPECT_TRUE(fpIndependent(RX, WY));
  EXPECT_TRUE(fpIndependent(RY, WX));
  // Same cell: the read observes the write.
  EXPECT_FALSE(fpIndependent(RX, WX));
  EXPECT_FALSE(fpIndependent(RY, WY));
  // Writers race on the shared history and read the sibling's cell to log
  // the full abstract pair state: dependent in both directions.
  EXPECT_FALSE(fpIndependent(WX, WY));
  EXPECT_FALSE(fpIndependent(WX, WX));
}

TEST(StructureFpTest, AllocatorPickCommutesWithLockTraffic) {
  ResourceModel Model = allocatorResourceModel(1, 2, AllocPoolSize);
  LockProtocol P = makeCasLock(1, 2, Model);
  DefTable Defs;
  defineAllocProgram(P, Defs, AllocPoolSize);
  // alloc() := lock(); r <-- pick_pool_cell; ... — fish the pick action
  // out of the definition body.
  const ProgRef &Body = Defs.lookup("alloc").Body;
  ASSERT_EQ(Body->kind(), Prog::Kind::Bind);
  const ProgRef &AfterLock = Body->rest();
  ASSERT_EQ(AfterLock->kind(), Prog::Kind::Bind);
  ASSERT_EQ(AfterLock->first()->kind(), Prog::Kind::Act);
  const ActionRef &Pick = AfterLock->first()->action();
  ASSERT_EQ(Pick->name(), "pick_pool_cell");
  const Footprint &PickFp = Pick->staticFootprint();
  ASSERT_TRUE(PickFp.known());
  // Pick reads only the caller's *own* private heap: independent of
  // itself and of the lock protocol's acquire/release footprint, whose
  // self-side writes land in other agents' frames.
  EXPECT_TRUE(fpIndependent(PickFp, PickFp));
  const Footprint &LockFp = P.TryLock->staticFootprint();
  ASSERT_TRUE(LockFp.known());
  EXPECT_TRUE(fpIndependent(PickFp, LockFp));
  EXPECT_FALSE(fpIndependent(LockFp, LockFp));
}

namespace {

/// Full-vs-reduced run of \p Main from \p GS in a closed world.
std::pair<RunResult, RunResult>
fullVsReduced(const ProgRef &Main, const GlobalState &GS,
              const ConcurroidRef &Ambient, const DefTable &Defs) {
  EngineOptions Opts;
  Opts.Ambient = Ambient;
  Opts.EnvInterference = false;
  Opts.Defs = &Defs;
  Opts.Jobs = 1;
  Opts.Por = PorMode::Off;
  RunResult Full = explore(Main, GS, Opts);
  Opts.Por = PorMode::On;
  RunResult Red = explore(Main, GS, Opts);
  return {std::move(Full), std::move(Red)};
}

} // namespace

TEST(StructurePorTest, TreiberConcurrentHeadReadsReduceStrictly) {
  TreiberCase Case = makeTreiberCase(1, 2, /*EnvHistCap=*/3);
  GlobalState GS = treiberState(Case, {5}, 0, 0);
  ProgRef Main = Prog::par(Prog::act(Case.ReadHead, {}),
                           Prog::act(Case.ReadHead, {}));
  auto [Full, Red] = fullVsReduced(Main, GS, Case.C, Case.Defs);
  ASSERT_TRUE(Full.Safe);
  ASSERT_TRUE(Red.Safe);
  EXPECT_TRUE(sameTerminals(Full, Red));
  EXPECT_TRUE(Red.PorReduced);
  EXPECT_LT(Red.ConfigsExplored, Full.ConfigsExplored)
      << Red.ConfigsExplored << " reduced vs " << Full.ConfigsExplored;
  EXPECT_LT(Red.ActionSteps, Full.ActionSteps);
}

TEST(StructurePorTest, SnapshotReaderIsALocalMoveBesideAWriter) {
  // par(writeX(3), readY): the y read commutes with everything the writer
  // does, so the reduction explores it alone and the interleaving where
  // the write lands first never materializes as a separate configuration.
  PairSnapCase Case = makePairSnapCase(1, /*EnvHistCap=*/2);
  GlobalState GS = pairSnapState(Case);
  ProgRef Main = Prog::par(Prog::act(Case.WriteX, {Expr::litInt(3)}),
                           Prog::act(Case.ReadY, {}));
  auto [Full, Red] = fullVsReduced(Main, GS, Case.C, Case.Defs);
  ASSERT_TRUE(Full.Safe);
  ASSERT_TRUE(Red.Safe);
  EXPECT_TRUE(sameTerminals(Full, Red));
  EXPECT_LT(Red.ConfigsExplored, Full.ConfigsExplored)
      << Red.ConfigsExplored << " reduced vs " << Full.ConfigsExplored;
  EXPECT_LT(Red.ActionSteps, Full.ActionSteps);
}

TEST(StructurePorTest, AllocatorPickStepsReduceUnderContention) {
  // par(alloc, alloc): while one thread holds the lock and picks its
  // cell, the other spins; the pick is a local move, so the reduced run
  // takes strictly fewer action steps than the full interleaving.
  ResourceModel Model = allocatorResourceModel(1, 2, AllocPoolSize);
  LockProtocol P = makeCasLock(1, 2, Model);
  DefTable Defs;
  defineAllocProgram(P, Defs, AllocPoolSize);
  PCMTypeRef LockSelfType =
      PCMType::pairOf(PCMType::mutex(), PCMType::nat());
  Heap Pool;
  for (unsigned I = 1; I <= AllocPoolSize; ++I)
    Pool.insert(Ptr(I), Val::ofInt(0));
  GlobalState GS;
  GS.addLabel(P.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.addLabel(P.Lk, LockSelfType, P.InitialJoint(Pool),
              LockSelfType->unit(), /*EnvClosed=*/false);
  ProgRef Main =
      Prog::par(Prog::call("alloc", {}), Prog::call("alloc", {}));
  auto [Full, Red] = fullVsReduced(Main, GS, P.C, Defs);
  ASSERT_TRUE(Full.Safe);
  ASSERT_TRUE(Red.Safe);
  EXPECT_TRUE(sameTerminals(Full, Red));
  EXPECT_LE(Red.ConfigsExplored, Full.ConfigsExplored);
  EXPECT_LT(Red.ActionSteps, Full.ActionSteps)
      << Red.ActionSteps << " reduced vs " << Full.ActionSteps
      << " action steps";
}
