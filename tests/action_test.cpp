//===- tests/action_test.cpp - Atomic action tests -------------------------===//
//
// Part of fcsl-cpp. Exercises the Priv actions and the per-action proof
// obligations, including a deliberately non-erasing action that the
// erasure check must reject.
//
//===----------------------------------------------------------------------===//

#include "action/ActionChecks.h"
#include "concurroid/Priv.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label Pv = 1;

View privView(Heap Mine, Heap Theirs = Heap()) {
  View S;
  S.addLabel(Pv, LabelSlice{PCMVal::ofHeap(std::move(Mine)), Heap(),
                            PCMVal::ofHeap(std::move(Theirs))});
  return S;
}

std::vector<View> privSamples() {
  return {privView(Heap()),
          privView(Heap::singleton(Ptr(1), Val::ofInt(5))),
          privView(Heap::singleton(Ptr(2), Val::ofInt(7)),
                   Heap::singleton(Ptr(3), Val::ofInt(9)))};
}

} // namespace

TEST(PrivActionsTest, AllocReadsWritesFrees) {
  ConcurroidRef C = makePriv(Pv);
  ActionRef Alloc = makePrivAlloc(C, Pv);
  ActionRef Read = makePrivRead(C, Pv);
  ActionRef Write = makePrivWrite(C, Pv);
  ActionRef Free = makePrivFree(C, Pv);

  View S = privView(Heap());
  auto A = Alloc->step(S, {Val::ofInt(42)});
  ASSERT_TRUE(A.has_value());
  ASSERT_EQ(A->size(), 1u);
  Ptr P = (*A)[0].Result.getPtr();
  View S1 = (*A)[0].Post;
  EXPECT_TRUE(S1.self(Pv).getHeap().contains(P));

  auto R = Read->step(S1, {Val::ofPtr(P)});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ((*R)[0].Result.getInt(), 42);

  auto W = Write->step(S1, {Val::ofPtr(P), Val::ofInt(7)});
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ((*W)[0].Post.self(Pv).getHeap().lookup(P).getInt(), 7);

  auto F = Free->step((*W)[0].Post, {Val::ofPtr(P)});
  ASSERT_TRUE(F.has_value());
  EXPECT_FALSE((*F)[0].Post.self(Pv).getHeap().contains(P));
}

TEST(PrivActionsTest, ReadOutsideHeapIsUnsafe) {
  ConcurroidRef C = makePriv(Pv);
  ActionRef Read = makePrivRead(C, Pv);
  // Reading another thread's private cell is unsafe, too.
  View S = privView(Heap(), Heap::singleton(Ptr(3), Val::ofInt(9)));
  EXPECT_FALSE(Read->step(S, {Val::ofPtr(Ptr(3))}).has_value());
  EXPECT_FALSE(Read->step(S, {Val::ofPtr(Ptr(8))}).has_value());
}

TEST(PrivActionsTest, AllocAvoidsAllVisibleCells) {
  ConcurroidRef C = makePriv(Pv);
  ActionRef Alloc = makePrivAlloc(C, Pv);
  View S = privView(Heap::singleton(Ptr(1), Val::ofInt(0)),
                    Heap::singleton(Ptr(2), Val::ofInt(0)));
  auto A = Alloc->step(S, {Val::unit()});
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ((*A)[0].Result.getPtr(), Ptr(3));
}

TEST(ActionChecksTest, PrivActionsWellFormed) {
  ConcurroidRef C = makePriv(Pv);
  std::vector<ActionArgs> Args = {{Val::ofPtr(Ptr(1))},
                                  {Val::ofPtr(Ptr(2))}};
  MetaReport R =
      checkActionWellFormed(*makePrivRead(C, Pv), privSamples(), Args);
  EXPECT_TRUE(R.Passed) << R.CounterExample;
  MetaReport F =
      checkActionWellFormed(*makePrivFree(C, Pv), privSamples(), Args);
  EXPECT_TRUE(F.Passed) << F.CounterExample;
}

TEST(ActionChecksTest, NonErasingActionRejected) {
  // An action whose *physical* effect depends on state outside the
  // physical projection (here: the other component's heap, which the
  // observing thread cannot physically inspect): the erasure check must
  // reject it, mirroring the paper's "trymark erases to CAS" obligation.
  ConcurroidRef C = makePriv(Pv);
  ActionRef AuxLeak = makeAction(
      "aux_leak", C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Pre.self(Pv).getHeap().contains(Ptr(1)))
          return std::nullopt;
        View Post = Pre;
        Heap Mine = Pre.self(Pv).getHeap();
        Mine.update(Ptr(1), Val::ofInt(static_cast<int64_t>(
                                Pre.other(Pv).getHeap().size())));
        Post.setSelf(Pv, PCMVal::ofHeap(std::move(Mine)));
        return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
      });
  std::vector<View> Sample = {
      privView(Heap::singleton(Ptr(1), Val::ofInt(0))),
      privView(Heap::singleton(Ptr(1), Val::ofInt(0)),
               Heap::singleton(Ptr(9), Val::ofInt(0)))};
  MetaReport R = checkActionErasure(*AuxLeak, Sample, {{}});
  EXPECT_FALSE(R.Passed);
}

TEST(ActionChecksTest, TotalityCatchesPartiality) {
  ConcurroidRef C = makePriv(Pv);
  ActionRef Read = makePrivRead(C, Pv);
  // Precondition "always" is too weak for reads: totality fails on views
  // whose private heap lacks the cell.
  MetaReport R = checkActionTotality(
      *Read, privSamples(), {{Val::ofPtr(Ptr(1))}},
      [](const View &, const ActionArgs &) { return true; });
  EXPECT_FALSE(R.Passed);
  // With the right precondition it passes.
  MetaReport R2 = checkActionTotality(
      *Read, privSamples(), {{Val::ofPtr(Ptr(1))}},
      [](const View &S, const ActionArgs &A) {
        return S.self(Pv).getHeap().contains(A[0].getPtr());
      });
  EXPECT_TRUE(R2.Passed) << R2.CounterExample;
}

TEST(ActionChecksTest, CorrespondenceCatchesRogueActions) {
  ConcurroidRef C = makePriv(Pv);
  // A rogue action that mutates the (supposedly empty) joint heap: no
  // Priv transition covers that.
  ActionRef Rogue = makeAction(
      "rogue", C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        View Post = Pre;
        Post.setJoint(Pv, Heap::singleton(Ptr(5), Val::ofInt(1)));
        return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
      });
  MetaReport R = checkActionCorrespondence(*Rogue, privSamples(), {{}});
  EXPECT_FALSE(R.Passed);
}
