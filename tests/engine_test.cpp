//===- tests/engine_test.cpp - Interleaving engine tests -------------------===//
//
// Part of fcsl-cpp. Exercises the exhaustive interleaving engine on a toy
// counter concurroid: sequencing, conditionals, recursion with cycle
// pruning, parallel composition with subjective splits, hide, safety
// violations and environment interference.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Entangle.h"
#include "concurroid/Priv.h"
#include "prog/Engine.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label Pv = 1;
constexpr Label Ct = 2;
const Ptr Cell = Ptr(1);

struct CounterWorld {
  ConcurroidRef C;
  ActionRef Incr;  ///< () -> old value; bumps cell and self.
  ActionRef Read;  ///< () -> value.
  DefTable Defs;
};

/// The toy world: joint cell &1 == sum of contributions (nat PCM); the
/// environment may bump the counter up to a cap.
CounterWorld makeCounterWorld(int64_t EnvCap) {
  auto Coh = [](const View &S) {
    if (!S.hasLabel(Ct))
      return false;
    const Val *V = S.joint(Ct).tryLookup(Cell);
    if (!V || !V->isInt())
      return false;
    return V->getInt() == static_cast<int64_t>(S.self(Ct).getNat() +
                                               S.other(Ct).getNat());
  };
  auto C = makeConcurroid("Counter", {OwnedLabel{Ct, "ct",
                                                 PCMType::nat()}},
                          Coh);
  C->addTransition(Transition(
      "bump", TransitionKind::Internal,
      [EnvCap](const View &Pre) -> std::vector<View> {
        if (!Pre.hasLabel(Ct))
          return {};
        int64_t Cur = Pre.joint(Ct).lookup(Cell).getInt();
        if (Cur >= EnvCap)
          return {};
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(Cell, Val::ofInt(Cur + 1));
        Post.setJoint(Ct, std::move(Joint));
        Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return {Post};
      },
      // Thread-side increments are uncapped.
      [](const View &Pre, const View &Post) {
        if (!Pre.hasLabel(Ct) || !Post.hasLabel(Ct))
          return false;
        for (Label L : Pre.labels())
          if (L != Ct && !(Pre.slice(L) == Post.slice(L)))
            return false;
        return Post.joint(Ct).lookup(Cell).getInt() ==
                   Pre.joint(Ct).lookup(Cell).getInt() + 1 &&
               Post.self(Ct).getNat() == Pre.self(Ct).getNat() + 1 &&
               Pre.other(Ct) == Post.other(Ct);
      }));

  CounterWorld World;
  World.C = entangle(makePriv(Pv), C);

  World.Incr = makeAction(
      "incr", World.C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *V = Pre.joint(Ct).tryLookup(Cell);
        if (!V)
          return std::nullopt;
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(Cell, Val::ofInt(V->getInt() + 1));
        Post.setJoint(Ct, std::move(Joint));
        Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return std::vector<ActOutcome>{{*V, std::move(Post)}};
      });

  World.Read = makeAction(
      "read", World.C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *V = Pre.joint(Ct).tryLookup(Cell);
        if (!V)
          return std::nullopt;
        return std::vector<ActOutcome>{{*V, Pre}};
      });
  return World;
}

GlobalState counterState(int64_t Initial = 0, uint64_t EnvSelf = 0) {
  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.addLabel(Ct, PCMType::nat(), Heap::singleton(Cell,
                                                  Val::ofInt(Initial)),
              PCMVal::ofNat(EnvSelf), false);
  return GS;
}

EngineOptions optsFor(const CounterWorld &W, bool Env) {
  EngineOptions Opts;
  Opts.Ambient = W.C;
  Opts.EnvInterference = Env;
  Opts.Defs = &W.Defs;
  return Opts;
}

} // namespace

TEST(EngineTest, RetProducesOneTerminal) {
  CounterWorld W = makeCounterWorld(0);
  RunResult R = explore(Prog::ret(Expr::litInt(7)), counterState(),
                        optsFor(W, false));
  EXPECT_TRUE(R.complete());
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result, Val::ofInt(7));
}

TEST(EngineTest, BindThreadsValues) {
  CounterWorld W = makeCounterWorld(0);
  ProgRef P = Prog::bind(Prog::act(W.Incr, {}), "old",
                         Prog::ret(Expr::add(Expr::var("old"),
                                             Expr::litInt(100))));
  RunResult R = explore(P, counterState(5, 5), optsFor(W, false));
  EXPECT_TRUE(R.complete());
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result, Val::ofInt(105));
  EXPECT_EQ(R.Terminals[0].FinalView.joint(Ct).lookup(Cell).getInt(), 6);
}

TEST(EngineTest, IfSelectsBranch) {
  CounterWorld W = makeCounterWorld(0);
  ProgRef P = Prog::ifThenElse(Expr::litBool(false),
                               Prog::ret(Expr::litInt(1)),
                               Prog::ret(Expr::litInt(2)));
  RunResult R = explore(P, counterState(), optsFor(W, false));
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result, Val::ofInt(2));
}

TEST(EngineTest, RecursionWithTermination) {
  CounterWorld W = makeCounterWorld(0);
  // bump_until(n): v <-- incr; if n < v then ret v else bump_until(n).
  W.Defs.define(
      "bump_until",
      FuncDef{{"n"},
              Prog::bind(Prog::act(W.Incr, {}), "v",
                         Prog::ifThenElse(
                             Expr::lt(Expr::var("n"), Expr::var("v")),
                             Prog::ret(Expr::var("v")),
                             Prog::call("bump_until",
                                        {Expr::var("n")})))});
  RunResult R = explore(Prog::call("bump_until", {Expr::litInt(2)}),
                        counterState(), optsFor(W, false));
  EXPECT_TRUE(R.complete());
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result, Val::ofInt(3));
}

TEST(EngineTest, SpinLoopIsPrunedNotDiverging) {
  CounterWorld W = makeCounterWorld(/*EnvCap=*/1);
  // wait_pos(): v <-- read; if 0 < v then ret v else wait_pos().
  // Terminates only via environment interference; the pure spin cycles
  // are pruned by configuration dedup.
  W.Defs.define("wait_pos",
                FuncDef{{},
                        Prog::bind(
                            Prog::act(W.Read, {}), "v",
                            Prog::ifThenElse(
                                Expr::lt(Expr::litInt(0), Expr::var("v")),
                                Prog::ret(Expr::var("v")),
                                Prog::call("wait_pos", {})))});
  RunResult R = explore(Prog::call("wait_pos", {}), counterState(),
                        optsFor(W, true));
  EXPECT_TRUE(R.complete());
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result, Val::ofInt(1));
  EXPECT_GT(R.EnvSteps, 0u);
  EXPECT_GT(R.DedupHits, 0u);
}

TEST(EngineTest, ParallelIncrementsInterleave) {
  CounterWorld W = makeCounterWorld(0);
  ProgRef P = Prog::par(Prog::act(W.Incr, {}), Prog::act(W.Incr, {}));
  RunResult R = explore(P, counterState(), optsFor(W, false));
  EXPECT_TRUE(R.complete());
  // Both interleavings reach counter == 2; results differ in the pair of
  // observed old values: (0,1) and (1,0).
  ASSERT_EQ(R.Terminals.size(), 2u);
  for (const Terminal &T : R.Terminals) {
    EXPECT_EQ(T.FinalView.joint(Ct).lookup(Cell).getInt(), 2);
    EXPECT_EQ(T.FinalView.self(Ct).getNat(), 2u);
    EXPECT_TRUE(T.Result == Val::pair(Val::ofInt(0), Val::ofInt(1)) ||
                T.Result == Val::pair(Val::ofInt(1), Val::ofInt(0)));
  }
}

TEST(EngineTest, NestedParJoinsContributions) {
  CounterWorld W = makeCounterWorld(0);
  ProgRef Two = Prog::par(Prog::act(W.Incr, {}), Prog::act(W.Incr, {}));
  ProgRef Four = Prog::par(Two, Two);
  RunResult R = explore(Four, counterState(), optsFor(W, false));
  EXPECT_TRUE(R.complete());
  for (const Terminal &T : R.Terminals)
    EXPECT_EQ(T.FinalView.self(Ct).getNat(), 4u);
}

TEST(EngineTest, UnsafeActionReported) {
  CounterWorld W = makeCounterWorld(0);
  GlobalState Bad;
  Bad.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  Bad.addLabel(Ct, PCMType::nat(), Heap(), PCMVal::ofNat(0), false);
  EngineOptions Opts = optsFor(W, false);
  Opts.CheckStepCoherence = false; // Reach the action itself.
  RunResult R = explore(Prog::act(W.Read, {}), Bad, Opts);
  EXPECT_FALSE(R.Safe);
  EXPECT_NE(R.FailureNote.find("read"), std::string::npos);
}

TEST(EngineTest, MaxConfigsExhaustion) {
  CounterWorld W = makeCounterWorld(0);
  W.Defs.define(
      "count_up",
      FuncDef{{},
              Prog::bind(Prog::act(W.Incr, {}), "v",
                         Prog::ifThenElse(
                             Expr::lt(Expr::litInt(1000), Expr::var("v")),
                             Prog::retUnit(),
                             Prog::call("count_up", {})))});
  EngineOptions Opts = optsFor(W, false);
  Opts.MaxConfigs = 50;
  RunResult R = explore(Prog::call("count_up", {}), counterState(), Opts);
  EXPECT_TRUE(R.Exhausted);
  EXPECT_FALSE(R.complete());
}

TEST(EngineTest, HideShieldsFromInterference) {
  // Without hide, env bumps make several terminal counter values; the
  // hidden version is deterministic.
  CounterWorld W = makeCounterWorld(/*EnvCap=*/2);
  ProgRef ReadTwice =
      Prog::bind(Prog::act(W.Read, {}), "a",
                 Prog::bind(Prog::act(W.Read, {}), "b",
                            Prog::ret(Expr::mkPair(Expr::var("a"),
                                                   Expr::var("b")))));
  RunResult Open =
      explore(ReadTwice, counterState(), optsFor(W, true));
  EXPECT_TRUE(Open.complete());
  EXPECT_GT(Open.Terminals.size(), 1u);
}

TEST(EngineTest, HideInstallsAndUninstalls) {
  CounterWorld W = makeCounterWorld(0);
  // The private heap holds the counter cell; hide installs the Counter
  // concurroid over it, the body increments twice, and on exit the cell
  // returns to the private heap with the new value.
  HideSpec Spec;
  Spec.Pv = Pv;
  Spec.Hidden = Ct;
  Spec.SelfType = PCMType::nat();
  Spec.ChooseDonation = [](const Heap &Mine) -> std::optional<Heap> {
    const Val *V = Mine.tryLookup(Cell);
    if (!V || !V->isInt())
      return std::nullopt;
    return Heap::singleton(Cell, *V);
  };
  Spec.InitSelf = PCMVal::ofNat(0);

  ProgRef Body = Prog::seq(Prog::act(W.Incr, {}), Prog::act(W.Incr, {}));
  ProgRef P = Prog::hide(Spec, Body);

  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.setSelf(Pv, rootThread(),
             PCMVal::ofHeap(Heap::singleton(Cell, Val::ofInt(0))));

  EngineOptions Opts;
  Opts.Ambient = makePriv(Pv);
  Opts.EnvInterference = true;
  Opts.Defs = &W.Defs;
  RunResult R = explore(P, GS, Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_EQ(R.Terminals.size(), 1u);
  const View &F = R.Terminals[0].FinalView;
  EXPECT_FALSE(F.hasLabel(Ct));
  EXPECT_EQ(F.self(Pv).getHeap().lookup(Cell).getInt(), 2);
}

TEST(EngineTest, HideDecorationFailureReported) {
  CounterWorld W = makeCounterWorld(0);
  HideSpec Spec;
  Spec.Pv = Pv;
  Spec.Hidden = Ct;
  Spec.SelfType = PCMType::nat();
  Spec.ChooseDonation =
      [](const Heap &) -> std::optional<Heap> { return std::nullopt; };
  Spec.InitSelf = PCMVal::ofNat(0);
  ProgRef P = Prog::hide(Spec, Prog::retUnit());

  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  EngineOptions Opts;
  Opts.Ambient = makePriv(Pv);
  Opts.Defs = &W.Defs;
  RunResult R = explore(P, GS, Opts);
  EXPECT_FALSE(R.Safe);
  EXPECT_NE(R.FailureNote.find("decoration"), std::string::npos);
}

TEST(EngineTest, EnvironmentStepsRespectOtherFixity) {
  CounterWorld W = makeCounterWorld(1);
  // A plain read under interference: my contribution never changes.
  RunResult R = explore(Prog::act(W.Read, {}), counterState(),
                        optsFor(W, true));
  EXPECT_TRUE(R.complete());
  for (const Terminal &T : R.Terminals)
    EXPECT_EQ(T.FinalView.self(Ct).getNat(), 0u);
}
