//===- tests/treiber_test.cpp - Treiber stack case-study tests -------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "structures/TreiberStack.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Tr = 2;
} // namespace

TEST(TreiberTest, AbstractionReadsTheList) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  GlobalState GS = treiberState(Case, {7, 5}, 0, 0);
  std::optional<Val> Abs = treiberAbstractStack(Case, GS.joint(Tr));
  ASSERT_TRUE(Abs.has_value());
  EXPECT_EQ(*Abs, Val::pair(Val::ofInt(7),
                            Val::pair(Val::ofInt(5), Val::unit())));
  // Junk cells are rejected.
  Heap Junk = GS.joint(Tr);
  Junk.insert(Ptr(99), Val::pair(Val::ofInt(0), Val::ofPtr(Ptr::null())));
  EXPECT_FALSE(treiberAbstractStack(Case, Junk).has_value());
}

TEST(TreiberTest, PushCommitsAtomically) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  GlobalState GS = treiberState(Case, {}, 1, 0);
  View Pre = GS.viewFor(rootThread());

  auto R = Case.TryPush->step(
      Pre, {Val::ofPtr(Ptr(20)), Val::ofInt(4), Val::ofPtr(Ptr::null())});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ((*R)[0].Result, Val::ofBool(true));
  const View &Post = (*R)[0].Post;
  EXPECT_TRUE(Case.C->coherent(Post));
  // The node moved from my private heap into the shared list.
  EXPECT_FALSE(Post.self(Pv).getHeap().contains(Ptr(20)));
  EXPECT_TRUE(Post.joint(Tr).contains(Ptr(20)));
  // The history records the push.
  ASSERT_EQ(Post.self(Tr).getHist().size(), 1u);
  EXPECT_EQ(Post.self(Tr).getHist().tryLookup(1)->After,
            Val::pair(Val::ofInt(4), Val::unit()));
}

TEST(TreiberTest, StaleCasFails) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  GlobalState GS = treiberState(Case, {5}, 1, 0);
  View Pre = GS.viewFor(rootThread());
  // Expected head is stale (null, but the stack has an element).
  auto R = Case.TryPush->step(
      Pre, {Val::ofPtr(Ptr(20)), Val::ofInt(4), Val::ofPtr(Ptr::null())});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ((*R)[0].Result, Val::ofBool(false));
  EXPECT_EQ((*R)[0].Post, Pre);
}

TEST(TreiberTest, PushingUnownedNodeIsUnsafe) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  GlobalState GS = treiberState(Case, {}, 0, 0);
  View Pre = GS.viewFor(rootThread());
  EXPECT_FALSE(Case.TryPush
                   ->step(Pre, {Val::ofPtr(Ptr(20)), Val::ofInt(4),
                                Val::ofPtr(Ptr::null())})
                   .has_value());
}

TEST(TreiberTest, PopTransfersOwnership) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  GlobalState GS = treiberState(Case, {5}, 0, 0);
  View Pre = GS.viewFor(rootThread());
  Ptr Head = Pre.joint(Tr).lookup(Case.Sentinel).getPtr();
  auto R = Case.TryPop->step(Pre, {Val::ofPtr(Head)});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ((*R)[0].Result.first(), Val::ofBool(true));
  EXPECT_EQ((*R)[0].Result.second(), Val::ofInt(5));
  const View &Post = (*R)[0].Post;
  EXPECT_TRUE(Post.self(Pv).getHeap().contains(Head));
  EXPECT_FALSE(Post.joint(Tr).contains(Head));
  EXPECT_TRUE(Case.C->coherent(Post));
}

TEST(TreiberTest, PushPopRoundTrip) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  ProgRef P = Prog::seq(
      Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(9)}),
      Prog::call("pop", {}));
  RunResult R =
      explore(P, treiberState(Case, {}, 1, 0), Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result,
            Val::pair(Val::ofBool(true), Val::ofInt(9)));
}

TEST(TreiberTest, PopOnEmptyReportsEmpty) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(Prog::call("pop", {}),
                        treiberState(Case, {}, 0, 0), Opts);
  EXPECT_TRUE(R.complete());
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result,
            Val::pair(Val::ofBool(false), Val::ofInt(0)));
}

TEST(TreiberTest, SessionPasses) {
  SessionReport Report = makeTreiberSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
  EXPECT_GT(Report.PerCategory[size_t(ObCategory::Conc)].Obligations, 0u);
}
