//===- tests/intern_test.cpp - Canonical interned-state layer tests --------===//
//
// Part of fcsl-cpp.
//
// Pins the invariants of the hash-consed state representation
// (support/Intern.h): structurally equal values share one canonical node
// (so handle equality is pointer equality), copies are O(1), fingerprints
// are process-stable (golden values below fail if the mixing scheme ever
// drifts), and concurrent interning from many threads converges on the
// same canonical nodes.
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"
#include "pcm/Histories.h"
#include "pcm/PCMVal.h"
#include "state/View.h"
#include "support/Intern.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace fcsl;

namespace {

// A handle is one arena pointer; interning must not grow it.
static_assert(sizeof(Val) == sizeof(void *), "Val is a single pointer");
static_assert(sizeof(Heap) == sizeof(void *), "Heap is a single pointer");
static_assert(sizeof(History) == sizeof(void *),
              "History is a single pointer");
static_assert(sizeof(PCMVal) == sizeof(void *), "PCMVal is a single pointer");

/// Structural equality must coincide with fingerprint equality on the
/// canonical representation: same node <=> same fingerprint here.
template <typename T> void expectCanonical(const T &A, const T &B) {
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
}

TEST(InternTest, StructurallyEqualValsShareOneNode) {
  expectCanonical(Val::unit(), Val());
  expectCanonical(Val::ofInt(42), Val::ofInt(42));
  expectCanonical(Val::ofBool(false), Val::ofBool(false));
  expectCanonical(Val::ofPtr(Ptr(9)), Val::ofPtr(Ptr(9)));
  expectCanonical(Val::node(true, Ptr(1), Ptr(2)),
                  Val::node(true, Ptr(1), Ptr(2)));
  expectCanonical(Val::pair(Val::ofInt(1), Val::ofBool(true)),
                  Val::pair(Val::ofInt(1), Val::ofBool(true)));
  EXPECT_NE(Val::ofInt(1).fingerprint(), Val::ofInt(2).fingerprint());
  EXPECT_NE(Val::ofInt(0).fingerprint(), Val::ofBool(false).fingerprint());
}

TEST(InternTest, StructurallyEqualHeapsShareOneNode) {
  // Insertion order must not matter: the payload is a sorted map.
  Heap A;
  A.insert(Ptr(1), Val::ofInt(10));
  A.insert(Ptr(2), Val::ofInt(20));
  Heap B;
  B.insert(Ptr(2), Val::ofInt(20));
  B.insert(Ptr(1), Val::ofInt(10));
  expectCanonical(A, B);
  expectCanonical(Heap(), Heap());
  EXPECT_NE(A.fingerprint(), Heap().fingerprint());
}

TEST(InternTest, StructurallyEqualHistoriesShareOneNode) {
  History A;
  A.add(1, HistEntry{Val::ofInt(0), Val::ofInt(1)});
  A.add(2, HistEntry{Val::ofInt(1), Val::ofInt(2)});
  History B;
  B.add(2, HistEntry{Val::ofInt(1), Val::ofInt(2)});
  B.add(1, HistEntry{Val::ofInt(0), Val::ofInt(1)});
  expectCanonical(A, B);
  expectCanonical(History(), History());
}

TEST(InternTest, StructurallyEqualPCMValsShareOneNode) {
  expectCanonical(PCMVal::ofNat(7), PCMVal::ofNat(7));
  expectCanonical(PCMVal::mutexOwn(), PCMVal::mutexOwn());
  expectCanonical(PCMVal::mutexFree(), PCMVal::mutexFree());
  expectCanonical(PCMVal::singletonPtr(Ptr(3)),
                  PCMVal::ofPtrSet({Ptr(3)}));
  expectCanonical(PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(1))),
                  PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(1))));
  expectCanonical(PCMVal::ofHist(History()), PCMVal::ofHist(History()));
  expectCanonical(
      PCMVal::makePair(PCMVal::ofNat(1), PCMVal::mutexFree()),
      PCMVal::makePair(PCMVal::ofNat(1), PCMVal::mutexFree()));
  expectCanonical(PCMVal::liftDef(PCMVal::ofNat(5)),
                  PCMVal::liftDef(PCMVal::ofNat(5)));
  // Default construction is the Nat unit.
  expectCanonical(PCMVal(), PCMVal::ofNat(0));
}

TEST(InternTest, AllLiftedUndefinedElementsAreOneNode) {
  // Undefined elements of every lifted carrier always compared equal, so
  // canonically they are one node regardless of the recorded carrier type.
  PCMVal UNat = PCMVal::liftUndef(PCMType::nat());
  PCMVal UHeap = PCMVal::liftUndef(PCMType::heap());
  PCMVal UNone = PCMVal::liftUndef(nullptr);
  expectCanonical(UNat, UHeap);
  expectCanonical(UNat, UNone);
  EXPECT_TRUE(UNat.isLiftUndef());
  EXPECT_FALSE(UNat.isValid());
  EXPECT_NE(UNat, PCMVal::liftDef(PCMVal::ofNat(0)));
}

TEST(InternTest, GoldenFingerprintsAreProcessStable) {
  // Frozen constants: fingerprints feed cross-process dedup keys and the
  // binary codec's identity expectations, so any change to the mixing
  // scheme (fpScramble/fpCombine/fpString, salts, payload order) must be
  // deliberate and bump CodecVersion.
  EXPECT_EQ(Val::unit().fingerprint(), 0x4803287b9c419382ULL);
  EXPECT_EQ(Val::ofInt(42).fingerprint(), 0x3d5374c201aa199dULL);
  EXPECT_EQ(Val::ofBool(true).fingerprint(), 0xba72d94a6e6aefabULL);
  EXPECT_EQ(Val::ofPtr(Ptr(7)).fingerprint(), 0xabdcd78407479e17ULL);
  EXPECT_EQ(Val::node(true, Ptr(1), Ptr(2)).fingerprint(),
            0x334ccc3f88f674eaULL);
  EXPECT_EQ(Val::pair(Val::ofInt(1), Val::ofInt(2)).fingerprint(),
            0x986e4687649ef175ULL);
  EXPECT_EQ(Heap().fingerprint(), 0x4d309f0c1d314aedULL);
  EXPECT_EQ(Heap::singleton(Ptr(1), Val::ofInt(5)).fingerprint(),
            0x55673e7afbc043a1ULL);
  EXPECT_EQ(History().fingerprint(), 0x2b54be08b68a307fULL);
  History H1;
  H1.add(1, HistEntry{Val::unit(), Val::ofInt(1)});
  EXPECT_EQ(H1.fingerprint(), 0xbfa733a31a648dc9ULL);
  EXPECT_EQ(PCMVal::ofNat(3).fingerprint(), 0x127b227a674e2fe3ULL);
  EXPECT_EQ(PCMVal::mutexOwn().fingerprint(), 0x8bc2b2a867910e2aULL);
  EXPECT_EQ(PCMVal::liftUndef(PCMType::nat()).fingerprint(),
            0x08e793f2f0077d2cULL);
}

TEST(InternTest, LabelSliceFingerprintCombinesComponents) {
  LabelSlice A{PCMVal::ofNat(1), Heap(), PCMVal::ofNat(2)};
  LabelSlice B{PCMVal::ofNat(1), Heap(), PCMVal::ofNat(2)};
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  // Self/other asymmetry must be visible in the fingerprint.
  LabelSlice C{PCMVal::ofNat(2), Heap(), PCMVal::ofNat(1)};
  EXPECT_NE(A.fingerprint(), C.fingerprint());
}

TEST(InternTest, CopiesAreHandleCopies) {
  // A copy shares the node, so deep structures copy in O(1) and compare
  // in O(1) — the property the visited set relies on.
  Val Deep = Val::ofInt(0);
  for (int I = 0; I != 64; ++I)
    Deep = Val::pair(Deep, Val::ofInt(I));
  Val Copy = Deep;
  EXPECT_EQ(Copy, Deep);
  EXPECT_EQ(std::hash<Val>()(Copy), std::hash<Val>()(Deep));
}

TEST(InternTest, StatsReportEveryArenaAndDedup) {
  // Force at least one duplicate request per arena.
  (void)Val::ofInt(12345);
  (void)Val::ofInt(12345);
  (void)Heap::singleton(Ptr(99), Val::unit());
  (void)Heap::singleton(Ptr(99), Val::unit());
  History H;
  H.add(1, HistEntry{Val::unit(), Val::unit()});
  (void)PCMVal::ofNat(999);
  (void)PCMVal::ofNat(999);
  InternStats Stats = internStats();
  std::vector<std::string> Names;
  for (const InternTypeStats &S : Stats.PerType) {
    Names.push_back(S.Name);
    EXPECT_GE(S.Requests, S.Nodes) << S.Name;
  }
  EXPECT_NE(std::find(Names.begin(), Names.end(), "val"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "heap"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "history"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "pcmval"), Names.end());
  EXPECT_GT(Stats.dedupRatio(), 1.0);
}

TEST(InternTest, ConcurrentInterningConvergesOnCanonicalNodes) {
  // Many threads intern the same structures; every thread must end up
  // with the same canonical handles (pointer equality across threads).
  constexpr int NumThreads = 8;
  std::vector<std::vector<Val>> PerThread(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&PerThread, T] {
      for (int I = 0; I != 200; ++I) {
        Val V = Val::pair(Val::ofInt(I % 32), Val::ofBool(I % 2 == 0));
        PerThread[T].push_back(V);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  for (int T = 1; T != NumThreads; ++T)
    for (size_t I = 0; I != PerThread[0].size(); ++I)
      EXPECT_EQ(PerThread[0][I], PerThread[T][I]);
}

} // namespace
