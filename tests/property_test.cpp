//===- tests/property_test.cpp - Randomized property sweeps ----------------===//
//
// Part of fcsl-cpp. Deterministic-seed randomized properties over the
// algebraic substrate: PCM laws on generated elements, subtraction
// round-trips, subjective fork/join round-trips, and nested hide.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Priv.h"
#include "pcm/Algebra.h"
#include "prog/Engine.h"
#include "state/GlobalState.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

Val randomVal(Rng &R) {
  switch (R.nextBelow(4)) {
  case 0:
    return Val::ofInt(static_cast<int64_t>(R.nextBelow(5)));
  case 1:
    return Val::ofBool(R.chance(1, 2));
  case 2:
    return Val::ofPtr(Ptr(static_cast<uint32_t>(R.nextBelow(4))));
  default:
    return Val::unit();
  }
}

Heap randomHeap(Rng &R, uint32_t MaxPtr) {
  Heap H;
  for (uint32_t I = 1; I <= MaxPtr; ++I)
    if (R.chance(1, 2))
      H.insert(Ptr(I), randomVal(R));
  return H;
}

History randomHist(Rng &R) {
  History H;
  for (uint64_t T = 1; T <= 4; ++T)
    if (R.chance(1, 2))
      H.add(T, HistEntry{randomVal(R), randomVal(R)});
  return H;
}

PCMVal randomElem(Rng &R, const PCMType &T) {
  switch (T.kind()) {
  case PCMKind::Nat:
    return PCMVal::ofNat(R.nextBelow(5));
  case PCMKind::Mutex:
    return R.chance(1, 2) ? PCMVal::mutexOwn() : PCMVal::mutexFree();
  case PCMKind::PtrSet: {
    std::set<Ptr> S;
    for (uint32_t I = 1; I <= 4; ++I)
      if (R.chance(1, 2))
        S.insert(Ptr(I));
    return PCMVal::ofPtrSet(std::move(S));
  }
  case PCMKind::HeapPCM:
    return PCMVal::ofHeap(randomHeap(R, 4));
  case PCMKind::Hist:
    return PCMVal::ofHist(randomHist(R));
  case PCMKind::Pair:
    return PCMVal::makePair(randomElem(R, *T.first()),
                            randomElem(R, *T.second()));
  case PCMKind::Lift:
    if (R.chance(1, 5))
      return PCMVal::liftUndef(T.inner());
    return PCMVal::liftDef(randomElem(R, *T.inner()));
  }
  return PCMVal::ofNat(0);
}

} // namespace

class RandomPCMTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPCMTest, LawsOnRandomElements) {
  Rng R(GetParam());
  for (PCMTypeRef T :
       {PCMType::nat(), PCMType::mutex(), PCMType::ptrSet(),
        PCMType::heap(), PCMType::hist(),
        PCMType::pairOf(PCMType::ptrSet(), PCMType::hist()),
        PCMType::lifted(PCMType::heap())}) {
    std::vector<PCMVal> Sample;
    for (int I = 0; I < 6; ++I)
      Sample.push_back(randomElem(R, *T));
    PCMLawReport Report = checkPCMLaws(*T, Sample);
    EXPECT_TRUE(Report.allHold()) << T->name();
  }
}

TEST_P(RandomPCMTest, SubtractionRoundTrips) {
  Rng R(GetParam() ^ 0x50b7);
  for (PCMTypeRef T : {PCMType::nat(), PCMType::ptrSet(), PCMType::heap(),
                       PCMType::hist(),
                       PCMType::pairOf(PCMType::nat(), PCMType::heap())}) {
    for (int I = 0; I < 10; ++I) {
      PCMVal Whole = randomElem(R, *T);
      for (const PCMVal &Part : enumerateSubElements(Whole, 16)) {
        std::optional<PCMVal> Rest = pcmSubtract(Whole, Part);
        ASSERT_TRUE(Rest.has_value()) << T->name();
        std::optional<PCMVal> Back = PCMVal::join(Part, *Rest);
        ASSERT_TRUE(Back.has_value());
        EXPECT_EQ(*Back, Whole) << T->name();
      }
    }
  }
}

TEST_P(RandomPCMTest, ForkJoinRoundTripsGlobalState) {
  Rng R(GetParam() + 99);
  for (int Iter = 0; Iter < 20; ++Iter) {
    GlobalState GS;
    GS.addLabel(1, PCMType::ptrSet(), Heap(), PCMVal::ofPtrSet({}),
                false);
    PCMVal Whole = randomElem(R, *PCMType::ptrSet());
    GS.setSelf(1, rootThread(), Whole);
    GlobalState Before = GS;

    // Any split; fork then join must restore the parent contribution.
    std::vector<PCMVal> Subs = enumerateSubElements(Whole, 8);
    PCMVal Left = Subs[R.nextBelow(Subs.size())];
    PCMVal Right = *pcmSubtract(Whole, Left);
    std::map<Label, std::pair<PCMVal, PCMVal>> Splits;
    Splits[1] = {Left, Right};
    GS.fork(rootThread(), 2, 3, Splits);
    GS.joinChildren(rootThread(), 2, 3);
    EXPECT_EQ(GS, Before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPCMTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(NestedHideTest, TwoScopedInstallationsUnwindInOrder) {
  // Install two counters over disjoint private cells, innermost first
  // out: hide A { hide B { incr both } }; afterwards both cells are back
  // in the private heap with their new values.
  constexpr Label Pv = 1, CtA = 2, CtB = 3;
  const Ptr CellA = Ptr(1), CellB = Ptr(2);

  auto MakeCounter = [](Label L, Ptr Cell) {
    auto Coh = [L, Cell](const View &S) {
      if (!S.hasLabel(L))
        return false;
      const Val *V = S.joint(L).tryLookup(Cell);
      return V && V->isInt() &&
             V->getInt() == static_cast<int64_t>(S.self(L).getNat() +
                                                 S.other(L).getNat());
    };
    return makeConcurroid("Counter" + std::to_string(L),
                          {OwnedLabel{L, "ct", PCMType::nat()}}, Coh);
  };
  ConcurroidRef CA = MakeCounter(CtA, CellA);
  ConcurroidRef CB = MakeCounter(CtB, CellB);

  auto MakeIncr = [](ConcurroidRef C, Label L, Ptr Cell) {
    return makeAction(
        "incr" + std::to_string(L), C, 0,
        [L, Cell](const View &Pre, const std::vector<Val> &)
            -> std::optional<std::vector<ActOutcome>> {
          const Val *V = Pre.joint(L).tryLookup(Cell);
          if (!V)
            return std::nullopt;
          View Post = Pre;
          Heap Joint = Pre.joint(L);
          Joint.update(Cell, Val::ofInt(V->getInt() + 1));
          Post.setJoint(L, std::move(Joint));
          Post.setSelf(L, PCMVal::ofNat(Pre.self(L).getNat() + 1));
          return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
        });
  };

  auto HideOver = [Pv](Label L, Ptr Cell, ConcurroidRef C, ProgRef Body) {
    HideSpec Spec;
    Spec.Pv = Pv;
    Spec.Hidden = L;
    Spec.SelfType = PCMType::nat();
    Spec.Installed = std::move(C);
    Spec.ChooseDonation = [Cell](const Heap &Mine) -> std::optional<Heap> {
      const Val *V = Mine.tryLookup(Cell);
      if (!V)
        return std::nullopt;
      return Heap::singleton(Cell, *V);
    };
    Spec.InitSelf = PCMVal::ofNat(0);
    return Prog::hide(std::move(Spec), std::move(Body));
  };

  ProgRef Inner = Prog::seq(
      Prog::act(MakeIncr(CA, CtA, CellA), {}),
      Prog::act(MakeIncr(CB, CtB, CellB), {}));
  ProgRef Main =
      HideOver(CtA, CellA, CA, HideOver(CtB, CellB, CB, Inner));

  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  Heap Mine;
  Mine.insert(CellA, Val::ofInt(0));
  Mine.insert(CellB, Val::ofInt(0));
  GS.setSelf(Pv, rootThread(), PCMVal::ofHeap(std::move(Mine)));

  EngineOptions Opts;
  Opts.Ambient = makePriv(Pv);
  Opts.EnvInterference = true;
  DefTable Defs;
  Opts.Defs = &Defs;
  RunResult R = explore(Main, GS, Opts);
  ASSERT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_EQ(R.Terminals.size(), 1u);
  const View &F = R.Terminals[0].FinalView;
  EXPECT_FALSE(F.hasLabel(CtA));
  EXPECT_FALSE(F.hasLabel(CtB));
  EXPECT_EQ(F.self(Pv).getHeap().lookup(CellA).getInt(), 1);
  EXPECT_EQ(F.self(Pv).getHeap().lookup(CellB).getInt(), 1);
}
