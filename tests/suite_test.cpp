//===- tests/suite_test.cpp - Whole-suite and registry tests ---------------===//
//
// Part of fcsl-cpp. Checks the suite inventory, the Table 2 matrix and
// the Figure 5 dependency diagram against the paper's shapes. (The
// individual sessions are discharged by the per-structure tests and by
// bench_table1.)
//
//===----------------------------------------------------------------------===//

#include "concurroid/Registry.h"
#include "structures/Suite.h"

#include <gtest/gtest.h>

using namespace fcsl;

TEST(SuiteTest, ElevenCaseStudiesInTableOrder) {
  std::vector<CaseEntry> Cases = allCaseStudies();
  ASSERT_EQ(Cases.size(), 11u);
  EXPECT_EQ(Cases[0].Name, "CAS-lock");
  EXPECT_EQ(Cases[6].Name, "Spanning tree");
  EXPECT_EQ(Cases[10].Name, "Prod/Cons");
}

TEST(SuiteTest, Table2MatchesPaperShape) {
  registerAllLibraries();
  Registry &R = globalRegistry();
  std::string Table = R.renderTable2();

  // Every Table 1 program appears.
  for (const CaseEntry &Case : allCaseStudies())
    EXPECT_NE(Table.find(Case.Name), std::string::npos) << Case.Name;
  // The paper's primitive concurroids appear as columns.
  for (const char *Col : {"Priv", "CLock", "TLock", "ReadPair", "Treiber",
                          "SpanTree", "FlatCombine"})
    EXPECT_NE(Table.find(Col), std::string::npos) << Col;
  // Interchangeable-lock marks exist.
  EXPECT_NE(Table.find("3L"), std::string::npos);
}

TEST(SuiteTest, Table2CellsMatchPaper) {
  registerAllLibraries();
  const std::vector<LibraryInfo> &Libs = globalRegistry().libraries();
  auto UsesOf = [&](const std::string &Name)
      -> const std::vector<ConcurroidUse> * {
    for (const LibraryInfo &L : Libs)
      if (L.Name == Name)
        return &L.Uses;
    return nullptr;
  };

  // Spot checks against the paper's Table 2.
  const auto *Span = UsesOf("Spanning tree");
  ASSERT_NE(Span, nullptr);
  ASSERT_EQ(Span->size(), 2u);
  EXPECT_EQ((*Span)[0].Concurroid, "Priv");
  EXPECT_EQ((*Span)[1].Concurroid, "SpanTree");

  const auto *Snapshot = UsesOf("Pair snapshot");
  ASSERT_NE(Snapshot, nullptr);
  ASSERT_EQ(Snapshot->size(), 1u); // ReadPair only.

  const auto *Incr = UsesOf("CG increment");
  ASSERT_NE(Incr, nullptr);
  bool LockViaIface = false;
  for (const ConcurroidUse &U : *Incr)
    if (U.Concurroid == "CLock")
      LockViaIface = U.ViaLockInterface;
  EXPECT_TRUE(LockViaIface);
}

TEST(SuiteTest, Figure5DependenciesMatchPaper) {
  registerAllLibraries();
  DotGraph G = globalRegistry().dependencyGraph();
  EXPECT_TRUE(G.isAcyclic());

  auto HasEdge = [&](const char *From, const char *To) {
    for (const auto &E : G.edges())
      if (E.first == From && E.second == To)
        return true;
    return false;
  };
  // The exact edges of Figure 5.
  EXPECT_TRUE(HasEdge("CAS-lock", "Abstract lock"));
  EXPECT_TRUE(HasEdge("Ticketed lock", "Abstract lock"));
  EXPECT_TRUE(HasEdge("Abstract lock", "CG increment"));
  EXPECT_TRUE(HasEdge("Abstract lock", "CG allocator"));
  EXPECT_TRUE(HasEdge("Abstract lock", "Flat combiner"));
  EXPECT_TRUE(HasEdge("CG allocator", "Treiber stack"));
  EXPECT_TRUE(HasEdge("Treiber stack", "Seq. stack"));
  EXPECT_TRUE(HasEdge("Treiber stack", "Prod/Cons"));
  EXPECT_TRUE(HasEdge("Flat combiner", "FC-stack"));
  // And no reversed edges.
  EXPECT_FALSE(HasEdge("Abstract lock", "CAS-lock"));
}

TEST(SuiteTest, SessionReportsCarryTimings) {
  // Run the two cheapest sessions and sanity-check the report plumbing.
  for (const CaseEntry &Case : allCaseStudies()) {
    if (Case.Name != "CG increment" && Case.Name != "CG allocator")
      continue;
    SessionReport Report = Case.MakeSession().run();
    EXPECT_EQ(Report.Program, Case.Name);
    EXPECT_GE(Report.TotalMs, 0.0);
    EXPECT_GT(Report.totalObligations(), 0u);
  }
}
