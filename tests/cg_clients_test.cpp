//===- tests/cg_clients_test.cpp - CG increment/allocator tests ------------===//
//
// Part of fcsl-cpp. The coarse-grained clients of the abstract lock
// interface, exercised with both lock implementations.
//
//===----------------------------------------------------------------------===//

#include "structures/CgAllocator.h"
#include "structures/CgIncrement.h"
#include "structures/SpinLock.h"
#include "structures/TicketLock.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Lk = 2;
} // namespace

/// Parameterized over the lock implementation: the whole point of the
/// abstract interface (Table 2's `3L`).
class LockClientTest
    : public ::testing::TestWithParam<std::pair<const char *, int>> {
protected:
  LockProtocol makeLock(const ResourceModel &Model) {
    if (GetParam().second == 0)
      return makeCasLock(Pv, Lk, Model);
    return makeTicketLock(Pv, Lk, Model);
  }
  PCMTypeRef tokenType() {
    return GetParam().second == 0
               ? static_cast<PCMTypeRef>(PCMType::mutex())
               : static_cast<PCMTypeRef>(PCMType::ptrSet());
  }
};

TEST_P(LockClientTest, IncrementAddsOne) {
  LockProtocol P = makeLock(counterResourceModel(Lk, /*EnvCap=*/0));
  DefTable Defs;
  defineIncrProgram(P, Defs);

  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.addLabel(Lk, PCMType::pairOf(tokenType(), PCMType::nat()),
              P.InitialJoint(Heap::singleton(counterResourceCell(),
                                             Val::ofInt(0))),
              PCMVal::makePair(tokenType()->unit(), PCMVal::ofNat(0)),
              false);

  EngineOptions Opts;
  Opts.Ambient = P.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Defs;
  RunResult R = explore(Prog::call("incr", {}), GS, Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_EQ(R.Terminals.size(), 1u);
  const View &F = R.Terminals[0].FinalView;
  EXPECT_EQ(P.ClientSelf(F).getNat(), 1u);
  EXPECT_EQ(F.joint(Lk).lookup(counterResourceCell()).getInt(), 1);
  EXPECT_FALSE(P.HoldsLock(F));
}

TEST_P(LockClientTest, ParallelIncrementsAddTwo) {
  LockProtocol P = makeLock(counterResourceModel(Lk, /*EnvCap=*/0));
  DefTable Defs;
  defineIncrProgram(P, Defs);

  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.addLabel(Lk, PCMType::pairOf(tokenType(), PCMType::nat()),
              P.InitialJoint(Heap::singleton(counterResourceCell(),
                                             Val::ofInt(0))),
              PCMVal::makePair(tokenType()->unit(), PCMVal::ofNat(0)),
              false);

  EngineOptions Opts;
  Opts.Ambient = P.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Defs;
  RunResult R = explore(
      Prog::par(Prog::call("incr", {}), Prog::call("incr", {})), GS,
      Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_FALSE(R.Terminals.empty());
  for (const Terminal &T : R.Terminals) {
    EXPECT_EQ(T.FinalView.self(Lk).second().getNat(), 2u);
    EXPECT_EQ(
        T.FinalView.joint(Lk).lookup(counterResourceCell()).getInt(), 2);
  }
}

TEST_P(LockClientTest, AllocWithdrawsFromPool) {
  LockProtocol P =
      makeLock(allocatorResourceModel(Pv, Lk, AllocPoolSize));
  DefTable Defs;
  defineAllocProgram(P, Defs, AllocPoolSize);

  Heap Pool;
  for (unsigned I = 1; I <= AllocPoolSize; ++I)
    Pool.insert(Ptr(I), Val::ofInt(0));
  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.addLabel(Lk, PCMType::pairOf(tokenType(), PCMType::nat()),
              P.InitialJoint(Pool),
              PCMVal::makePair(tokenType()->unit(), PCMVal::ofNat(0)),
              false);

  EngineOptions Opts;
  Opts.Ambient = P.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Defs;
  RunResult R = explore(Prog::call("alloc", {}), GS, Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_EQ(R.Terminals.size(), 1u);
  const Terminal &T = R.Terminals[0];
  ASSERT_TRUE(T.Result.isPtr());
  EXPECT_TRUE(isPoolCell(T.Result.getPtr()));
  EXPECT_TRUE(T.FinalView.self(Pv).getHeap().contains(T.Result.getPtr()));
  EXPECT_EQ(T.FinalView.self(Lk).second().getNat(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    BothLocks, LockClientTest,
    ::testing::Values(std::make_pair("cas", 0), std::make_pair("ticket", 1)),
    [](const ::testing::TestParamInfo<std::pair<const char *, int>> &I) {
      return std::string(I.param.first);
    });

TEST(CgIncrementTest, SessionPasses) {
  SessionReport Report = makeCgIncrementSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
  // Table 1 shape: no Conc/Acts/Stab obligations of its own.
  EXPECT_EQ(Report.PerCategory[size_t(ObCategory::Conc)].Obligations, 0u);
  EXPECT_EQ(Report.PerCategory[size_t(ObCategory::Acts)].Obligations, 0u);
  EXPECT_EQ(Report.PerCategory[size_t(ObCategory::Stab)].Obligations, 0u);
  EXPECT_GT(Report.PerCategory[size_t(ObCategory::Main)].Obligations, 0u);
}

TEST(CgAllocatorTest, SessionPasses) {
  SessionReport Report = makeCgAllocatorSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
}
