//===- tests/pcm_test.cpp - PCM framework tests ----------------------------===//
//
// Part of fcsl-cpp. Property-style sweeps of the PCM laws over every
// carrier the paper's case studies use (Section 6's PCM inventory).
//
//===----------------------------------------------------------------------===//

#include "pcm/Algebra.h"
#include "state/View.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

History historyOf(std::initializer_list<uint64_t> Stamps) {
  History H;
  for (uint64_t T : Stamps)
    H.add(T, HistEntry{Val::ofInt(static_cast<int64_t>(T) - 1),
                       Val::ofInt(static_cast<int64_t>(T))});
  return H;
}

/// A representative element sample per carrier.
std::vector<PCMVal> sampleFor(const PCMType &T) {
  switch (T.kind()) {
  case PCMKind::Nat:
    return {PCMVal::ofNat(0), PCMVal::ofNat(1), PCMVal::ofNat(3)};
  case PCMKind::Mutex:
    return {PCMVal::mutexFree(), PCMVal::mutexOwn()};
  case PCMKind::PtrSet:
    return {PCMVal::ofPtrSet({}), PCMVal::singletonPtr(Ptr(1)),
            PCMVal::ofPtrSet({Ptr(2), Ptr(3)}),
            PCMVal::ofPtrSet({Ptr(1), Ptr(3)})};
  case PCMKind::HeapPCM:
    return {PCMVal::ofHeap(Heap()),
            PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(1))),
            PCMVal::ofHeap(Heap::singleton(Ptr(2), Val::ofInt(2))),
            PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(9)))};
  case PCMKind::Hist:
    return {PCMVal::ofHist(History()), PCMVal::ofHist(historyOf({1})),
            PCMVal::ofHist(historyOf({2})),
            PCMVal::ofHist(historyOf({1, 2}))};
  case PCMKind::Pair: {
    std::vector<PCMVal> Firsts = sampleFor(*T.first());
    std::vector<PCMVal> Seconds = sampleFor(*T.second());
    std::vector<PCMVal> Out;
    for (const PCMVal &F : Firsts)
      for (const PCMVal &S : Seconds)
        Out.push_back(PCMVal::makePair(F, S));
    return Out;
  }
  case PCMKind::Lift: {
    std::vector<PCMVal> Out;
    Out.push_back(PCMVal::liftUndef(T.inner()));
    for (const PCMVal &Inner : sampleFor(*T.inner()))
      Out.push_back(PCMVal::liftDef(Inner));
    return Out;
  }
  }
  return {};
}

} // namespace

/// Parameterized sweep: the PCM laws hold for every carrier used in the
/// paper's case studies.
class PCMLawsTest : public ::testing::TestWithParam<PCMTypeRef> {};

TEST_P(PCMLawsTest, LawsHold) {
  PCMTypeRef T = GetParam();
  std::vector<PCMVal> Sample = sampleFor(*T);
  ASSERT_FALSE(Sample.empty());
  PCMLawReport R = checkPCMLaws(*T, Sample);
  EXPECT_TRUE(R.CommutativityHolds) << T->name();
  EXPECT_TRUE(R.AssociativityHolds) << T->name();
  EXPECT_TRUE(R.UnitLawHolds) << T->name();
  EXPECT_TRUE(R.UnitValid) << T->name();
  EXPECT_GT(R.JoinsEvaluated, 0u);
}

TEST_P(PCMLawsTest, UnitIsUnitOf) {
  PCMTypeRef T = GetParam();
  EXPECT_TRUE(T->unit().isUnitOf(*T));
}

INSTANTIATE_TEST_SUITE_P(
    AllCarriers, PCMLawsTest,
    ::testing::Values(
        PCMType::nat(), PCMType::mutex(), PCMType::ptrSet(),
        PCMType::heap(), PCMType::hist(),
        PCMType::pairOf(PCMType::mutex(), PCMType::nat()),
        PCMType::pairOf(PCMType::ptrSet(), PCMType::hist()),
        PCMType::lifted(PCMType::nat()),
        PCMType::pairOf(PCMType::mutex(),
                        PCMType::pairOf(PCMType::ptrSet(),
                                        PCMType::hist()))));

TEST(PCMJoinTest, MutexExclusion) {
  EXPECT_FALSE(
      PCMVal::join(PCMVal::mutexOwn(), PCMVal::mutexOwn()).has_value());
  auto R = PCMVal::join(PCMVal::mutexOwn(), PCMVal::mutexFree());
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->isOwn());
}

TEST(PCMJoinTest, SetDisjointness) {
  PCMVal A = PCMVal::singletonPtr(Ptr(1));
  EXPECT_FALSE(PCMVal::join(A, A).has_value());
  auto R = PCMVal::join(A, PCMVal::singletonPtr(Ptr(2)));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->getPtrSet().size(), 2u);
}

TEST(PCMJoinTest, NatIsTotal) {
  auto R = PCMVal::join(PCMVal::ofNat(2), PCMVal::ofNat(3));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->getNat(), 5u);
}

TEST(PCMJoinTest, LiftAbsorbsUndefined) {
  PCMTypeRef T = PCMType::lifted(PCMType::mutex());
  PCMVal Own = PCMVal::liftDef(PCMVal::mutexOwn());
  // Own * Own is undefined in mutex, so the lifted join is the explicit
  // undefined element — but it is *defined* as a lifted value.
  auto R = PCMVal::join(Own, Own);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->isLiftUndef());
  EXPECT_FALSE(R->isValid());
}

TEST(PCMSubtractTest, PerCarrier) {
  // nat.
  auto N = pcmSubtract(PCMVal::ofNat(5), PCMVal::ofNat(2));
  ASSERT_TRUE(N);
  EXPECT_EQ(N->getNat(), 3u);
  EXPECT_FALSE(pcmSubtract(PCMVal::ofNat(1), PCMVal::ofNat(2)));
  // mutex.
  auto M = pcmSubtract(PCMVal::mutexOwn(), PCMVal::mutexOwn());
  ASSERT_TRUE(M);
  EXPECT_FALSE(M->isOwn());
  EXPECT_FALSE(pcmSubtract(PCMVal::mutexFree(), PCMVal::mutexOwn()));
  // sets.
  auto S = pcmSubtract(PCMVal::ofPtrSet({Ptr(1), Ptr(2)}),
                       PCMVal::singletonPtr(Ptr(1)));
  ASSERT_TRUE(S);
  EXPECT_EQ(*S, PCMVal::singletonPtr(Ptr(2)));
  // heaps: values must match.
  Heap H;
  H.insert(Ptr(1), Val::ofInt(1));
  H.insert(Ptr(2), Val::ofInt(2));
  auto HR = pcmSubtract(PCMVal::ofHeap(H),
                        PCMVal::ofHeap(Heap::singleton(Ptr(1),
                                                       Val::ofInt(1))));
  ASSERT_TRUE(HR);
  EXPECT_EQ(HR->getHeap().size(), 1u);
  EXPECT_FALSE(pcmSubtract(
      PCMVal::ofHeap(H),
      PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(9)))));
}

TEST(PCMSubtractTest, SubtractRecombines) {
  // For every sub-element S of V: S \+ (V - S) == V.
  PCMVal V = PCMVal::ofPtrSet({Ptr(1), Ptr(2), Ptr(3)});
  for (const PCMVal &S : enumerateSubElements(V)) {
    auto Rest = pcmSubtract(V, S);
    ASSERT_TRUE(Rest);
    auto Back = PCMVal::join(S, *Rest);
    ASSERT_TRUE(Back);
    EXPECT_EQ(*Back, V);
  }
}

TEST(PCMEnumerateTest, CountsAndMembership) {
  EXPECT_EQ(enumerateSubElements(PCMVal::ofNat(3)).size(), 4u);
  EXPECT_EQ(enumerateSubElements(PCMVal::ofPtrSet({Ptr(1), Ptr(2)})).size(),
            4u);
  EXPECT_EQ(enumerateSubElements(PCMVal::mutexOwn()).size(), 2u);
  EXPECT_EQ(enumerateSubElements(PCMVal::mutexFree()).size(), 1u);
  // Limit is respected.
  EXPECT_EQ(enumerateSubElements(PCMVal::ofNat(100), 5).size(), 5u);
}

TEST(PCMTypeTest, NamesAndAdmission) {
  PCMTypeRef T = PCMType::pairOf(PCMType::mutex(), PCMType::nat());
  EXPECT_EQ(T->name(), "(mutex x nat)");
  EXPECT_TRUE(T->admits(PCMVal::makePair(PCMVal::mutexOwn(),
                                         PCMVal::ofNat(1))));
  EXPECT_FALSE(T->admits(PCMVal::ofNat(1)));
  EXPECT_FALSE(T->admits(PCMVal::makePair(PCMVal::ofNat(1),
                                          PCMVal::ofNat(1))));
  EXPECT_TRUE(*T == *PCMType::pairOf(PCMType::mutex(), PCMType::nat()));
  EXPECT_FALSE(*T == *PCMType::mutex());
}

TEST(PCMCancellativityTest, CoreCarriersCancellative) {
  for (PCMTypeRef T :
       {PCMType::nat(), PCMType::ptrSet(), PCMType::heap()}) {
    std::vector<PCMVal> Sample = sampleFor(*T);
    EXPECT_TRUE(checkCancellativity(Sample)) << T->name();
  }
}
