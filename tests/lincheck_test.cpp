//===- tests/lincheck_test.cpp - Linearizability checker tests -------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "lincheck/LinCheck.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

OpRecord op(unsigned Thread, const char *Name, Val Arg, Val Ret,
            uint64_t Invoke, uint64_t Return) {
  return OpRecord{Thread, Name, std::move(Arg), std::move(Ret), Invoke,
                  Return};
}

} // namespace

TEST(LinCheckTest, SequentialStackHistoryAccepted) {
  ConcurrentHistory H;
  H.add(op(0, "push", Val::ofInt(1), Val::unit(), 1, 2));
  H.add(op(0, "push", Val::ofInt(2), Val::unit(), 3, 4));
  H.add(op(0, "pop", Val::unit(), Val::ofInt(2), 5, 6));
  H.add(op(0, "pop", Val::unit(), Val::ofInt(1), 7, 8));
  LinResult R = checkLinearizable(H, stackSeqSpec());
  EXPECT_TRUE(R.Linearizable);
  EXPECT_EQ(R.Witness.size(), 4u);
}

TEST(LinCheckTest, FifoStackHistoryRejected) {
  // Strictly sequential LIFO violation: pop returns the *bottom* element.
  ConcurrentHistory H;
  H.add(op(0, "push", Val::ofInt(1), Val::unit(), 1, 2));
  H.add(op(0, "push", Val::ofInt(2), Val::unit(), 3, 4));
  H.add(op(0, "pop", Val::unit(), Val::ofInt(1), 5, 6));
  LinResult R = checkLinearizable(H, stackSeqSpec());
  EXPECT_FALSE(R.Linearizable);
}

TEST(LinCheckTest, OverlappingOpsMayReorder) {
  // A pop overlapping a push may linearize either side; returning the
  // pushed value is legal exactly because they overlap.
  ConcurrentHistory H;
  H.add(op(0, "push", Val::ofInt(9), Val::unit(), 1, 5));
  H.add(op(1, "pop", Val::unit(), Val::ofInt(9), 2, 6));
  EXPECT_TRUE(checkLinearizable(H, stackSeqSpec()).Linearizable);

  // If the pop strictly precedes the push, it cannot see the value.
  ConcurrentHistory H2;
  H2.add(op(1, "pop", Val::unit(), Val::ofInt(9), 1, 2));
  H2.add(op(0, "push", Val::ofInt(9), Val::unit(), 3, 4));
  EXPECT_FALSE(checkLinearizable(H2, stackSeqSpec()).Linearizable);
}

TEST(LinCheckTest, EmptyPopMarker) {
  ConcurrentHistory H;
  H.add(op(0, "pop", Val::unit(), Val::ofInt(0), 1, 2));
  EXPECT_TRUE(checkLinearizable(H, stackSeqSpec()).Linearizable);
}

TEST(LinCheckTest, PairSnapshotSpec) {
  // writeX(1) completes, then a read returns (1, 0): fine.
  ConcurrentHistory H;
  H.add(op(0, "writeX", Val::ofInt(1), Val::unit(), 1, 2));
  H.add(op(1, "read", Val::unit(),
           Val::pair(Val::ofInt(1), Val::ofInt(0)), 3, 4));
  EXPECT_TRUE(
      checkLinearizable(H, pairSnapshotSeqSpec(0, 0)).Linearizable);

  // A read strictly after the write cannot miss it.
  ConcurrentHistory H2;
  H2.add(op(0, "writeX", Val::ofInt(1), Val::unit(), 1, 2));
  H2.add(op(1, "read", Val::unit(),
            Val::pair(Val::ofInt(0), Val::ofInt(0)), 3, 4));
  EXPECT_FALSE(
      checkLinearizable(H2, pairSnapshotSeqSpec(0, 0)).Linearizable);
}

TEST(LinCheckTest, CounterSpec) {
  ConcurrentHistory H;
  H.add(op(0, "incr", Val::unit(), Val::ofInt(0), 1, 4));
  H.add(op(1, "incr", Val::unit(), Val::ofInt(1), 2, 5));
  H.add(op(0, "read", Val::unit(), Val::ofInt(2), 6, 7));
  EXPECT_TRUE(checkLinearizable(H, counterSeqSpec(0)).Linearizable);

  // Two increments returning the same old value are impossible.
  ConcurrentHistory H2;
  H2.add(op(0, "incr", Val::unit(), Val::ofInt(0), 1, 4));
  H2.add(op(1, "incr", Val::unit(), Val::ofInt(0), 2, 5));
  EXPECT_FALSE(checkLinearizable(H2, counterSeqSpec(0)).Linearizable);
}

TEST(LinCheckTest, RecorderTimestampsRespectOrder) {
  HistoryRecorder Rec;
  uint64_t I1 = Rec.invoke();
  Rec.record(0, "push", Val::ofInt(1), Val::unit(), I1);
  uint64_t I2 = Rec.invoke();
  Rec.record(1, "pop", Val::unit(), Val::ofInt(1), I2);
  ConcurrentHistory H = Rec.take();
  ASSERT_EQ(H.size(), 2u);
  EXPECT_LT(H.records()[0].InvokeTime, H.records()[0].ReturnTime);
  EXPECT_LT(H.records()[0].ReturnTime, H.records()[1].InvokeTime);
  EXPECT_TRUE(checkLinearizable(H, stackSeqSpec()).Linearizable);
  // take() drains.
  EXPECT_EQ(Rec.take().size(), 0u);
}
