//===- tests/simulate_test.cpp - Randomized schedule simulation ------------===//
//
// Part of fcsl-cpp. The scalable single-schedule execution mode (the
// reproduction's analogue of the paper's "program extraction" future
// work): its sampled runs must agree with exhaustive exploration on
// small instances and scale to instances exploration cannot reach.
//
//===----------------------------------------------------------------------===//

#include "structures/SpanTree.h"
#include "structures/TreiberStack.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

/// Splits the private node cells between the two pushing children.
SplitFn nodeSplit(Label Pv) {
  return [Pv](const View &V)
             -> std::map<Label, std::pair<PCMVal, PCMVal>> {
    Heap Mine = V.self(Pv).getHeap();
    Heap Left, Right;
    for (const auto &Cell : Mine)
      (Cell.first == Ptr(21) ? Right : Left)
          .insert(Cell.first, Cell.second);
    return {{Pv, {PCMVal::ofHeap(std::move(Left)),
                  PCMVal::ofHeap(std::move(Right))}}};
  };
}

} // namespace

TEST(SimulateTest, SampledTerminalsAreExploredTerminals) {
  // Every simulated outcome of the parallel Treiber pushes must be among
  // the exhaustively explored terminals.
  TreiberCase Case = makeTreiberCase(1, 2, 0);
  ProgRef Main = Prog::par(
      Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(1)}),
      Prog::call("push", {Expr::litPtr(Ptr(21)), Expr::litInt(2)}),
      nodeSplit(Case.Pv));
  GlobalState Initial = treiberState(Case, {}, 2, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;

  RunResult Explored = explore(Main, Initial, Opts);
  ASSERT_TRUE(Explored.complete());
  ASSERT_FALSE(Explored.Terminals.empty());

  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    SimResult Sim = simulate(Main, Initial, Opts, Seed);
    ASSERT_TRUE(Sim.Safe) << Sim.FailureNote;
    ASSERT_TRUE(Sim.Terminated);
    bool Found = false;
    for (const Terminal &T : Explored.Terminals)
      Found |= T.Result == Sim.Result && T.FinalView == Sim.FinalView;
    EXPECT_TRUE(Found) << "seed " << Seed << " produced an outcome the "
                       << "exhaustive exploration did not";
  }
}

TEST(SimulateTest, DeterministicPerSeed) {
  TreiberCase Case = makeTreiberCase(1, 2, 0);
  ProgRef Main = Prog::par(
      Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(1)}),
      Prog::call("push", {Expr::litPtr(Ptr(21)), Expr::litInt(2)}),
      nodeSplit(Case.Pv));
  GlobalState Initial = treiberState(Case, {}, 2, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  SimResult A = simulate(Main, Initial, Opts, 42);
  SimResult B = simulate(Main, Initial, Opts, 42);
  ASSERT_TRUE(A.Terminated && B.Terminated);
  EXPECT_EQ(A.Result, B.Result);
  EXPECT_EQ(A.FinalView, B.FinalView);
  EXPECT_EQ(A.Steps, B.Steps);
}

TEST(SimulateTest, ScalesBeyondExhaustiveExploration) {
  // A 10-node connected graph: far too many interleavings to enumerate
  // cheaply, but each sampled schedule still yields a spanning tree.
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  Rng Random(0xbeef);
  Heap G = randomGraph(10, Random, /*ConnectedFromRoot=*/true);
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;

  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    SimResult Sim = simulate(Main, spanRootState(Case, G), Opts, Seed);
    ASSERT_TRUE(Sim.Safe) << Sim.FailureNote;
    ASSERT_TRUE(Sim.Terminated);
    const Heap &G2 = Sim.FinalView.self(1).getHeap();
    PtrSet All;
    for (const auto &Cell : G2)
      All.insert(Cell.first);
    EXPECT_EQ(All.size(), 10u);
    EXPECT_TRUE(isTreeIn(G2, Ptr(1), All)) << "seed " << Seed;
  }
}

TEST(SimulateTest, UnsafeActionsCaughtOnSampledPaths) {
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  // nullify on a node we never marked: unsafe on every schedule.
  ProgRef Main = Prog::act(Case.NullifyL, {Expr::litPtr(Ptr(1))});
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  SimResult Sim =
      simulate(Main, spanOpenState(Case, figure2Graph(), {}), Opts, 7);
  EXPECT_FALSE(Sim.Safe);
  EXPECT_FALSE(Sim.Terminated);
}

TEST(SimulateTest, BudgetExhaustionReportsNonTermination) {
  // A pure spin loop with no way out: the walk hits the step budget.
  TreiberCase Case = makeTreiberCase(1, 2, 0);
  Case.Defs.define("spin",
                   FuncDef{{},
                           Prog::bind(Prog::act(Case.ReadHead, {}), "h",
                                      Prog::call("spin", {}))});
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  SimResult Sim = simulate(Prog::call("spin", {}),
                           treiberState(Case, {}, 0, 0), Opts, 3,
                           /*MaxSteps=*/500);
  EXPECT_TRUE(Sim.Safe);
  EXPECT_FALSE(Sim.Terminated);
  EXPECT_EQ(Sim.Steps, 500u);
}
