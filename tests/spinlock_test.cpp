//===- tests/spinlock_test.cpp - CAS-lock case-study tests -----------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "structures/CgIncrement.h"
#include "structures/SpinLock.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Lk = 2;

LockProtocol protocolUnderTest() {
  return makeCasLock(Pv, Lk, counterResourceModel(Lk, /*EnvCap=*/1));
}

GlobalState initialState(const LockProtocol &P) {
  GlobalState GS;
  GS.addLabel(P.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              false);
  GS.addLabel(P.Lk, PCMType::pairOf(PCMType::mutex(), PCMType::nat()),
              P.InitialJoint(Heap::singleton(counterResourceCell(),
                                             Val::ofInt(0))),
              PCMVal::makePair(PCMVal::mutexFree(), PCMVal::ofNat(0)),
              false);
  return GS;
}
} // namespace

TEST(SpinLockTest, TryLockAcquiresResource) {
  LockProtocol P = protocolUnderTest();
  GlobalState GS = initialState(P);
  View Pre = GS.viewFor(rootThread());
  EXPECT_FALSE(P.HoldsLock(Pre));

  auto Out = P.TryLock->step(Pre, {});
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 1u);
  EXPECT_EQ((*Out)[0].Result, Val::ofBool(true));
  const View &Post = (*Out)[0].Post;
  EXPECT_TRUE(P.HoldsLock(Post));
  // The resource cell moved into my private heap.
  EXPECT_TRUE(Post.self(P.Pv).getHeap().contains(counterResourceCell()));
  EXPECT_FALSE(Post.joint(P.Lk).contains(counterResourceCell()));

  // A second tryLock observes contention.
  auto Again = P.TryLock->step(Post, {});
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ((*Again)[0].Result, Val::ofBool(false));
}

TEST(SpinLockTest, UnlockRequiresOwnership) {
  LockProtocol P = protocolUnderTest();
  ActionRef Unlock = P.MakeUnlock(
      "unlock_id", 0,
      [P](const View &S,
          const std::vector<Val> &) -> std::optional<std::pair<Heap, PCMVal>> {
        const Val *Cell =
            S.self(P.Pv).getHeap().tryLookup(counterResourceCell());
        if (!Cell)
          return std::nullopt;
        return std::make_pair(
            Heap::singleton(counterResourceCell(), *Cell),
            P.ClientSelf(S));
      });
  GlobalState GS = initialState(P);
  View Pre = GS.viewFor(rootThread());
  // Unlocking without holding is a safety violation.
  EXPECT_FALSE(Unlock->step(Pre, {}).has_value());
}

TEST(SpinLockTest, InvariantViolatingReleaseIsUnsafe) {
  LockProtocol P = protocolUnderTest();
  // A broken client that tries to release with a corrupted counter.
  ActionRef BadUnlock = P.MakeUnlock(
      "unlock_bad", 0,
      [](const View &,
         const std::vector<Val> &) -> std::optional<std::pair<Heap, PCMVal>> {
        return std::make_pair(Heap::singleton(counterResourceCell(),
                                              Val::ofInt(999)),
                              PCMVal::ofNat(0));
      });
  GlobalState GS = initialState(P);
  View Pre = GS.viewFor(rootThread());
  auto Locked = P.TryLock->step(Pre, {});
  ASSERT_TRUE(Locked.has_value());
  EXPECT_FALSE(BadUnlock->step((*Locked)[0].Post, {}).has_value());
}

TEST(SpinLockTest, SessionDischargesAllObligations) {
  VerificationSession Session = makeSpinLockSession();
  EXPECT_GT(Session.numObligations(), 5u);
  SessionReport Report = Session.run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
  EXPECT_GT(Report.totalChecks(), 0u);
  // Table 1 shape: the CAS lock has Conc, Acts, Stab and Main columns.
  EXPECT_GT(Report.PerCategory[size_t(ObCategory::Conc)].Obligations, 0u);
  EXPECT_GT(Report.PerCategory[size_t(ObCategory::Acts)].Obligations, 0u);
  EXPECT_GT(Report.PerCategory[size_t(ObCategory::Stab)].Obligations, 0u);
  EXPECT_GT(Report.PerCategory[size_t(ObCategory::Main)].Obligations, 0u);
}
