//===- tests/por_dynamic_test.cpp - Dynamic partial-order reduction --------===//
//
// Part of fcsl-cpp. The dynamic POR mode (DESIGN.md §12): ample sets
// licensed by observed footprints and the env-future closure, on top of
// the static reduction. Pins where the reduction genuinely bites
// (spanning tree, flat combiner), that it never explores more than the
// full state space, that it is bit-identical across job counts and shard
// counts, that check-dynamic cross-validates every Table-1 session, and
// that it composes with symmetry reduction and sharding.
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "graph/GraphGen.h"
#include "prog/Engine.h"
#include "structures/FlatCombiner.h"
#include "structures/PairSnapshot.h"
#include "structures/SpanTree.h"
#include "structures/Suite.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label Pv = 1;
constexpr Label Sp = 2;
constexpr Label Rp = 3;
constexpr Label Fc = 4;

// The fork/join diamond stack from por_independence_test: wide commuting
// parallelism, the reduction's best case.
Heap diamondOf(unsigned Layers) {
  std::vector<GraphNode> Nodes;
  uint32_t Id = 1;
  for (unsigned L = 0; L < Layers; ++L) {
    Nodes.push_back(GraphNode{Ptr(Id), Ptr(Id + 1), Ptr(Id + 2)});
    Nodes.push_back(GraphNode{Ptr(Id + 1), Ptr(Id + 3), Ptr::null()});
    Nodes.push_back(GraphNode{Ptr(Id + 2), Ptr(Id + 3), Ptr::null()});
    Id += 3;
  }
  Nodes.push_back(GraphNode{Ptr(Id), Ptr::null(), Ptr::null()});
  return buildGraph(Nodes);
}

bool sameTerminals(const RunResult &A, const RunResult &B) {
  if (A.Terminals.size() != B.Terminals.size())
    return false;
  for (size_t I = 0; I != A.Terminals.size(); ++I)
    if (A.Terminals[I] < B.Terminals[I] || B.Terminals[I] < A.Terminals[I])
      return false;
  return true;
}

EngineOptions spanClosedOpts(const SpanTreeCase &Case) {
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  Opts.Jobs = 1;
  return Opts;
}

// The flat-combiner Table 1 session's exploration: one thread runs
// flat_combine(push 4) on its own slot while the environment publishes,
// combines, and collects on the other, capped at 4 history entries.
struct FcSetup {
  FlatCombinerCase Case;
  ProgRef Main;
  GlobalState Initial;
  EngineOptions Opts;
};

FcSetup makeFcSetup() {
  FcSetup S{makeFlatCombinerCase(Fc, /*EnvHistCap=*/4), nullptr, {}, {}};
  S.Main = Prog::call("flat_combine",
                      {Expr::litPtr(S.Case.Slot1), Expr::litInt(FcPush),
                       Expr::litInt(4)});
  S.Initial = flatCombinerState(S.Case, 1);
  S.Opts.Ambient = S.Case.C;
  S.Opts.EnvInterference = true;
  S.Opts.Defs = &S.Case.Defs;
  S.Opts.Jobs = 1;
  return S;
}

// Restores the process-default POR mode on scope exit (tests in this
// binary flip it to exercise session-level defaults).
struct PorDefaultGuard {
  ~PorDefaultGuard() { setDefaultPorMode(PorMode::Default); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Where the dynamic reduction bites, it must bite strictly — and never
// explore more than the full state space anywhere.
//===----------------------------------------------------------------------===//

TEST(PorDynamicTest, SpanningTreeDynamicBeatsStatic) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  GlobalState GS = spanRootState(Case, diamondOf(2));
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts = spanClosedOpts(Case);
  Opts.Por = PorMode::Off;
  RunResult Full = explore(Main, GS, Opts);
  Opts.Por = PorMode::On;
  RunResult Static = explore(Main, GS, Opts);
  Opts.Por = PorMode::Dynamic;
  RunResult Dyn = explore(Main, GS, Opts);
  ASSERT_TRUE(Full.complete()) << Full.FailureNote;
  ASSERT_TRUE(Dyn.complete()) << Dyn.FailureNote;
  EXPECT_TRUE(Dyn.PorReduced);
  EXPECT_TRUE(Dyn.PorDynamic);
  EXPECT_FALSE(Static.PorDynamic);
  EXPECT_TRUE(sameTerminals(Full, Dyn));
  // Strict pins: dynamic never beats full by less than static does, and
  // both modes genuinely reduce this commuting-heavy program.
  EXPECT_LT(Static.ConfigsExplored, Full.ConfigsExplored);
  EXPECT_LE(Dyn.ConfigsExplored, Static.ConfigsExplored);
  EXPECT_LT(Dyn.ConfigsExplored, Full.ConfigsExplored);
}

TEST(PorDynamicTest, FlatCombinerDynamicStrictlyReduces) {
  // The flat combiner is where the static reduction finds nothing (every
  // pair of static footprints clashes through the slots); the dynamic
  // mode must strictly beat the full count via observed footprints.
  FcSetup S = makeFcSetup();
  S.Opts.Por = PorMode::Off;
  RunResult Full = explore(S.Main, S.Initial, S.Opts);
  S.Opts.Por = PorMode::Dynamic;
  PorStats Before = porStats();
  RunResult Dyn = explore(S.Main, S.Initial, S.Opts);
  PorStats After = porStats();
  ASSERT_TRUE(Full.complete()) << Full.FailureNote;
  ASSERT_TRUE(Dyn.complete()) << Dyn.FailureNote;
  EXPECT_TRUE(Dyn.PorDynamic);
  EXPECT_TRUE(sameTerminals(Full, Dyn));
  EXPECT_LT(Dyn.ConfigsExplored, Full.ConfigsExplored)
      << Dyn.ConfigsExplored << " dynamic vs " << Full.ConfigsExplored
      << " full configurations";
  // The --stats POR section draws from these counters; a run that
  // reduced must have detected races and fallen back somewhere.
  EXPECT_GT(After.RacesDetected, Before.RacesDetected);
  EXPECT_GT(After.FullExpansions, Before.FullExpansions);
}

TEST(PorDynamicTest, PairSnapshotNeverExceedsFull) {
  // Regression pin for the sleep-set identity bug: reduced modes must
  // never *grow* the state space, even where no reduction exists.
  PairSnapCase Case = makePairSnapCase(Rp, /*EnvHistCap=*/2);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  Opts.Jobs = 1;
  Opts.Por = PorMode::Off;
  RunResult Full = explore(Prog::call("readPair", {}), pairSnapState(Case),
                           Opts);
  ASSERT_TRUE(Full.complete()) << Full.FailureNote;
  for (PorMode Mode : {PorMode::On, PorMode::Dynamic}) {
    Opts.Por = Mode;
    RunResult Red = explore(Prog::call("readPair", {}),
                            pairSnapState(Case), Opts);
    ASSERT_TRUE(Red.complete()) << Red.FailureNote;
    EXPECT_TRUE(sameTerminals(Full, Red));
    EXPECT_LE(Red.ConfigsExplored, Full.ConfigsExplored)
        << "mode=" << static_cast<int>(Mode);
  }
}

//===----------------------------------------------------------------------===//
// Determinism: bit-identical counters across job counts and shard counts.
//===----------------------------------------------------------------------===//

TEST(PorDynamicTest, BitIdenticalAcrossJobCounts) {
  FcSetup S = makeFcSetup();
  S.Opts.Por = PorMode::Dynamic;
  S.Opts.Jobs = 1;
  RunResult Serial = explore(S.Main, S.Initial, S.Opts);
  ASSERT_TRUE(Serial.complete()) << Serial.FailureNote;
  for (unsigned Jobs : {2u, 8u}) {
    S.Opts.Jobs = Jobs;
    RunResult Par = explore(S.Main, S.Initial, S.Opts);
    EXPECT_EQ(Serial.Safe, Par.Safe) << Jobs << " jobs";
    EXPECT_TRUE(sameTerminals(Serial, Par)) << Jobs << " jobs";
    EXPECT_EQ(Serial.ConfigsExplored, Par.ConfigsExplored) << Jobs
                                                           << " jobs";
    EXPECT_EQ(Serial.ActionSteps, Par.ActionSteps) << Jobs << " jobs";
    EXPECT_EQ(Serial.EnvSteps, Par.EnvSteps) << Jobs << " jobs";
  }
}

TEST(PorDynamicTest, BitIdenticalAcrossShardCounts) {
  FcSetup S = makeFcSetup();
  S.Opts.Por = PorMode::Dynamic;
  S.Opts.Shards = 1;
  RunResult Base = explore(S.Main, S.Initial, S.Opts);
  ASSERT_TRUE(Base.complete()) << Base.FailureNote;
  for (unsigned Shards : {2u, 4u}) {
    RunResult R = dist::distributedExplore(S.Main, S.Initial, S.Opts, {},
                                     Shards);
    EXPECT_EQ(R.Safe, Base.Safe) << "shards=" << Shards;
    EXPECT_TRUE(sameTerminals(R, Base)) << "shards=" << Shards;
    EXPECT_EQ(R.ConfigsExplored, Base.ConfigsExplored)
        << "shards=" << Shards;
    EXPECT_EQ(R.ActionSteps, Base.ActionSteps) << "shards=" << Shards;
    EXPECT_EQ(R.EnvSteps, Base.EnvSteps) << "shards=" << Shards;
  }
}

//===----------------------------------------------------------------------===//
// The soundness oracle, alone and composed.
//===----------------------------------------------------------------------===//

TEST(PorDynamicTest, CheckDynamicModeReportsBothRuns) {
  FcSetup S = makeFcSetup();
  S.Opts.Por = PorMode::CheckDynamic;
  RunResult R = explore(S.Main, S.Initial, S.Opts);
  EXPECT_TRUE(R.Safe);
  EXPECT_TRUE(R.PorChecked);
  EXPECT_FALSE(R.PorMismatch);
  EXPECT_GT(R.ConfigsFull, 0u);
  EXPECT_GT(R.ConfigsReduced, 0u);
  EXPECT_LT(R.ConfigsReduced, R.ConfigsFull);
  // Like Check, CheckDynamic reports the full (ground-truth) run.
  EXPECT_FALSE(R.PorReduced);
  EXPECT_EQ(R.ConfigsExplored, R.ConfigsFull);
}

TEST(PorDynamicTest, CheckDynamicCrossValidatesAllSessions) {
  // Every Table-1 session discharged with the full-vs-dynamic oracle as
  // the process default: any verdict or terminal-set divergence anywhere
  // in a session's obligations fails it.
  PorDefaultGuard Guard;
  setDefaultPorMode(PorMode::CheckDynamic);
  for (const CaseEntry &Case : allCaseStudies()) {
    SessionReport Report = Case.MakeSession().run();
    EXPECT_TRUE(Report.AllPassed)
        << Case.Name << ": "
        << (Report.Failures.empty() ? "" : Report.Failures.front());
  }
}

TEST(PorDynamicTest, ComposesWithSymmetryAndShards) {
  FcSetup S = makeFcSetup();
  S.Opts.Por = PorMode::Off;
  S.Opts.Symmetry = SymMode::Off;
  RunResult Full = explore(S.Main, S.Initial, S.Opts);
  ASSERT_TRUE(Full.complete()) << Full.FailureNote;
  S.Opts.Por = PorMode::Dynamic;
  S.Opts.Symmetry = SymMode::On;
  RunResult Local = explore(S.Main, S.Initial, S.Opts);
  EXPECT_EQ(Full.Safe, Local.Safe);
  EXPECT_TRUE(sameTerminals(Full, Local));
  RunResult Sharded = dist::distributedExplore(S.Main, S.Initial, S.Opts, {},
                                         2);
  EXPECT_EQ(Local.Safe, Sharded.Safe);
  EXPECT_TRUE(sameTerminals(Local, Sharded));
  EXPECT_EQ(Local.ConfigsExplored, Sharded.ConfigsExplored);
}
