//===- tests/dist_test.cpp - Multi-process sharded exploration tests -------===//
//
// Part of fcsl-cpp. Checks the src/dist subsystem: the wire protocol must
// round-trip every message type through arbitrarily chunked streams and
// reject malformed frames; the identity prefix of an encoded frontier
// config must exclude sleep footprints; distributedExplore() must return
// bit-identical verdicts, terminals and counters to the in-process engine
// at every shard count (with POR off and on); verification sessions run
// through the installed hook must agree with their in-process baseline;
// and a crashed worker must fail the run loudly instead of hanging.
// Part of the ASan stage of scripts/verify.sh.
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "dist/Shard.h"
#include "dist/Wire.h"

#include "cache/Store.h"
#include "spec/Session.h"
#include "structures/CgIncrement.h"
#include "structures/SpanTree.h"
#include "structures/SpinLock.h"
#include "structures/TicketLock.h"
#include "structures/TreiberStack.h"
#include "support/Codec.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sys/socket.h>

using namespace fcsl;
using namespace fcsl::dist;

namespace {

/// Feeds a wire frame to a FrameBuffer in chunks of \p ChunkSize bytes and
/// decodes the reassembled payload.
std::optional<WireMsg> throughBuffer(const std::vector<uint8_t> &Frame,
                                     size_t ChunkSize) {
  FrameBuffer In;
  for (size_t I = 0; I < Frame.size(); I += ChunkSize) {
    size_t N = std::min(ChunkSize, Frame.size() - I);
    In.feed(Frame.data() + I, N);
  }
  EXPECT_FALSE(In.corrupt());
  std::optional<std::vector<uint8_t>> Payload = In.next();
  if (!Payload)
    return std::nullopt;
  EXPECT_EQ(In.next(), std::nullopt) << "one frame in, one frame out";
  return decodeFrame(*Payload);
}

View sampleView() {
  View S;
  S.addLabel(1, LabelSlice{PCMVal::ofHeap(Heap::singleton(
                               Ptr(4), Val::ofInt(7))),
                           Heap(), PCMVal::ofHeap(Heap())});
  S.addLabel(2, LabelSlice{PCMVal::ofNat(1),
                           Heap::singleton(Ptr(1), Val::ofBool(true)),
                           PCMVal::ofNat(2)});
  return S;
}

VerdictMsg sampleVerdict() {
  VerdictMsg V;
  V.ShardId = 3;
  V.Safe = false;
  V.Exhausted = true;
  V.PorReduced = true;
  V.FailureNote = "probe applied outside its safe states";
  V.FailureTrace = {"thread 1: incr -> 0", "thread 1: probe UNSAFE"};
  V.Terminals.push_back(Terminal{Val::ofInt(1), sampleView()});
  V.Terminals.push_back(Terminal{Val::ofInt(2), sampleView()});
  V.ConfigsExplored = 101;
  V.ActionSteps = 55;
  V.EnvSteps = 17;
  V.DedupHits = 9;
  V.VisitedNodes = 101;
  V.VisitedBytes = 4096;
  V.FrontierAtAbort = 5;
  V.SentConfigs = 40;
  V.RecvConfigs = 38;
  V.SentBatches = 6;
  V.SentBytes = 3000;
  V.SuppressedSends = 4;
  V.DictNodes = 123;
  V.DictDefBytes = 456;
  V.DictRefBytes = 78;
  return V;
}

} // namespace

TEST(DistWire, RoundTripsEveryMessageType) {
  HelloMsg Hello;
  Hello.ShardId = 2;
  FrontierBatchMsg Batch;
  Batch.Dest = 1;
  Batch.Src = 0;
  Batch.Fps = {11, 0, 0x1234567890abcdef};
  Batch.Configs = {{1, 2, 3}, {}, {0xFF, 0x00, 0x7F}};
  FrontierBatchMsg DictBatch = Batch;
  DictBatch.Dict = true;
  DictBatch.Defs = {9, 8, 7, 6};
  StatsReportMsg Stats;
  Stats.ShardId = 1;
  Stats.Idle = true;
  Stats.Expanded = 12;
  Stats.SentConfigs = 3;
  Stats.RecvConfigs = 4;
  Stats.SentBatches = 2;
  Stats.SentBytes = 512;
  Stats.SuppressedSends = 6;
  DrainMsg Drain;
  Drain.Exhausted = true;
  VerdictMsg Verdict = sampleVerdict();

  // Reassembly must not depend on chunking: byte-by-byte, odd chunks, and
  // one whole write all yield the same frame.
  for (size_t Chunk : {size_t{1}, size_t{7}, size_t{1 << 20}}) {
    std::optional<WireMsg> M = throughBuffer(frameHello(Hello), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::Hello);
    EXPECT_EQ(M->Hello, Hello);

    M = throughBuffer(frameBatch(Batch), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::FrontierBatch);
    EXPECT_EQ(M->Batch, Batch);

    M = throughBuffer(frameBatch(DictBatch), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::FrontierBatchDict);
    EXPECT_EQ(M->Batch, DictBatch);

    M = throughBuffer(frameStats(Stats), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::StatsReport);
    EXPECT_EQ(M->Stats, Stats);

    M = throughBuffer(frameDrain(Drain), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::Drain);
    EXPECT_EQ(M->Drain, Drain);

    M = throughBuffer(frameVerdict(Verdict), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::Verdict);
    EXPECT_EQ(M->Verdict, Verdict);
  }
}

TEST(DistWire, InterleavedFramesComeOutInOrder) {
  HelloMsg Hello;
  Hello.ShardId = 7;
  DrainMsg Drain;
  std::vector<uint8_t> Stream = frameHello(Hello);
  std::vector<uint8_t> Second = frameDrain(Drain);
  Stream.insert(Stream.end(), Second.begin(), Second.end());

  FrameBuffer In;
  // Split in the middle of the second frame's length prefix.
  size_t Cut = frameHello(Hello).size() + 2;
  In.feed(Stream.data(), Cut);
  std::optional<std::vector<uint8_t>> P1 = In.next();
  ASSERT_TRUE(P1);
  EXPECT_EQ(In.next(), std::nullopt);
  In.feed(Stream.data() + Cut, Stream.size() - Cut);
  std::optional<std::vector<uint8_t>> P2 = In.next();
  ASSERT_TRUE(P2);

  std::optional<WireMsg> M1 = decodeFrame(*P1);
  std::optional<WireMsg> M2 = decodeFrame(*P2);
  ASSERT_TRUE(M1 && M2);
  EXPECT_EQ(M1->Type, MsgType::Hello);
  EXPECT_EQ(M1->Hello, Hello);
  EXPECT_EQ(M2->Type, MsgType::Drain);
}

TEST(DistWire, RejectsMalformedFrames) {
  // Truncation anywhere in the payload must fail the decode, not crash.
  std::vector<uint8_t> Frame = frameVerdict(sampleVerdict());
  std::vector<uint8_t> Payload(Frame.begin() + 4, Frame.end());
  for (size_t Len : {size_t{0}, size_t{3}, Payload.size() - 1})
    EXPECT_EQ(decodeFrame(std::vector<uint8_t>(Payload.begin(),
                                               Payload.begin() + Len)),
              std::nullopt)
        << "truncated to " << Len;

  // Trailing garbage after a well-formed body.
  std::vector<uint8_t> Padded = Payload;
  Padded.push_back(0);
  EXPECT_EQ(decodeFrame(Padded), std::nullopt);

  // Unknown message tag (right after the codec header).
  std::vector<uint8_t> BadTag(Frame.begin() + 4, Frame.end());
  Encoder Hdr;
  encodeHeader(Hdr);
  BadTag[Hdr.buffer().size()] = 99;
  EXPECT_EQ(decodeFrame(BadTag), std::nullopt);

  // Wrong codec magic.
  std::vector<uint8_t> BadMagic = Payload;
  BadMagic[0] ^= 0xFF;
  EXPECT_EQ(decodeFrame(BadMagic), std::nullopt);
}

TEST(DistWire, ImplausibleLengthLatchesCorruption) {
  FrameBuffer In;
  Encoder E;
  E.u32(MaxFrameBytes + 1);
  std::vector<uint8_t> Bytes = E.take();
  In.feed(Bytes.data(), Bytes.size());
  EXPECT_EQ(In.next(), std::nullopt);
  EXPECT_TRUE(In.corrupt());

  // A partial length prefix is just "not yet", not corruption.
  FrameBuffer Fresh;
  uint8_t Two[2] = {1, 0};
  Fresh.feed(Two, 2);
  EXPECT_EQ(Fresh.next(), std::nullopt);
  EXPECT_FALSE(Fresh.corrupt());
}

namespace {

GlobalState smallState() {
  GlobalState GS;
  GS.addLabel(1, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.addLabel(2, PCMType::nat(), Heap::singleton(Ptr(1), Val::ofInt(0)),
              PCMVal::ofNat(0), /*EnvClosed=*/false);
  return GS;
}

FrontierConfig smallConfig() {
  FrontierConfig C;
  C.GS = smallState();
  FrontierThread T;
  T.Id = 1;
  FrontierFrame F;
  F.Kind = 0;
  F.Node = 3;
  F.Env = {{"x", Val::ofInt(5)}};
  T.Frames.push_back(F);
  C.Threads.push_back(T);
  FrontierSleep S;
  S.IsEnv = false;
  S.T = 1;
  S.ActNode = 4;
  S.Fp = Footprint::none().read(FpAtom::selfAux(1));
  C.Sleep.push_back(S);
  C.EnvCloseMask = 0x3;
  return C;
}

} // namespace

TEST(DistCodec, FrontierConfigPrefixRoundTrips) {
  FrontierConfig C = smallConfig();
  Encoder E;
  size_t Prefix = encodeFrontierConfigPrefix(E, C);
  EXPECT_GT(Prefix, 0u);
  EXPECT_LE(Prefix, E.buffer().size());

  Decoder D(E.buffer());
  FrontierConfig Back = decodeFrontierConfig(D);
  EXPECT_FALSE(D.failed());
  EXPECT_TRUE(D.atEnd());
  EXPECT_EQ(Back, C);
}

TEST(DistCodec, IdentityPrefixExcludesWakePayload) {
  // Since v4 the engine deduplicates configs that differ in *any* wake
  // payload — sleep entries, EnvCloseMask, the Counts flag — and merges
  // the payload on arrival instead. Every such variant must own the same
  // fingerprint bytes or shards would route merge partners apart.
  FrontierConfig A = smallConfig();
  FrontierConfig FpVariant = smallConfig();
  FpVariant.Sleep[0].Fp = Footprint::none()
                              .readWrite(FpAtom::joint(2))
                              .read(FpAtom::otherAux(2));
  FrontierConfig Masked = smallConfig();
  Masked.EnvCloseMask = 0;
  FrontierConfig Slept = smallConfig();
  Slept.Sleep.clear();
  FrontierConfig Uncounted = smallConfig();
  Uncounted.Counts = false;
  Encoder EA;
  size_t PA = encodeFrontierConfigPrefix(EA, A);
  for (const FrontierConfig *Other : {&FpVariant, &Masked, &Slept,
                                      &Uncounted}) {
    Encoder EO;
    size_t PO = encodeFrontierConfigPrefix(EO, *Other);
    ASSERT_EQ(PA, PO);
    EXPECT_TRUE(std::equal(EA.buffer().begin(), EA.buffer().begin() + PA,
                           EO.buffer().begin()));
  }
  // The full buffers still differ (payload rides behind the prefix).
  Encoder EFull;
  encodeFrontierConfigPrefix(EFull, FpVariant);
  EXPECT_NE(EA.buffer(), EFull.buffer());

  // Identity-relevant fields must land inside the prefix.
  FrontierConfig Threaded = smallConfig();
  Threaded.Threads[0].Waiting = !Threaded.Threads[0].Waiting;
  Encoder EO;
  size_t PO = encodeFrontierConfigPrefix(EO, Threaded);
  std::vector<uint8_t> PrefA(EA.buffer().begin(), EA.buffer().begin() + PA);
  std::vector<uint8_t> PrefO(EO.buffer().begin(), EO.buffer().begin() + PO);
  EXPECT_NE(PrefA, PrefO);
}

TEST(DistWire, MalformedDictionaryReferenceIsSurfaced) {
  // A dict batch whose second config references past the end of the
  // connection dictionary: the transport must deliver the good config,
  // flag the bad one as Malformed (so the engine fails the run loudly),
  // and never crash.
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  {
    SocketShardIo Io(Fds[0], /*ShardId=*/0, /*NShards=*/2);
    NodeDictEncoder Enc;
    Encoder Defs, Refs;
    Enc.encodeConfig(Defs, Refs, smallConfig());
    FrontierBatchMsg B;
    B.Dest = 0;
    B.Src = 1;
    B.Dict = true;
    B.Defs = Defs.take();
    B.Fps = {1, 2};
    B.Configs.push_back(Refs.take());
    Encoder BadRefs;
    BadRefs.vu(1);               // one label
    BadRefs.vu(1);               // label id
    BadRefs.vu(Enc.size() + 50); // dangling dictionary reference
    B.Configs.push_back(BadRefs.take());
    std::vector<uint8_t> Frame = frameBatch(B);
    ASSERT_EQ(::send(Fds[1], Frame.data(), Frame.size(), 0),
              static_cast<ssize_t>(Frame.size()));

    ShardStatus Busy;
    std::vector<ShardDelivery> Incoming;
    for (int I = 0; I != 100 && Incoming.empty(); ++I)
      Io.pump(Busy, Incoming);
    ASSERT_EQ(Incoming.size(), 2u);
    EXPECT_FALSE(Incoming[0].Malformed);
    EXPECT_EQ(Incoming[0].Config, smallConfig());
    EXPECT_TRUE(Incoming[1].Malformed);

    // A corrupt definition stream poisons the peer dictionary: every
    // config in that and later batches from the peer is Malformed.
    FrontierBatchMsg Bad;
    Bad.Dest = 0;
    Bad.Src = 1;
    Bad.Dict = true;
    Bad.Defs = {0xff, 0xff, 0xff}; // unknown definition tag
    Bad.Fps = {3};
    Bad.Configs.push_back({0x00});
    std::vector<uint8_t> BadFrame = frameBatch(Bad);
    ASSERT_EQ(::send(Fds[1], BadFrame.data(), BadFrame.size(), 0),
              static_cast<ssize_t>(BadFrame.size()));
    Incoming.clear();
    for (int I = 0; I != 100 && Incoming.empty(); ++I)
      Io.pump(Busy, Incoming);
    ASSERT_EQ(Incoming.size(), 1u);
    EXPECT_TRUE(Incoming[0].Malformed);
  }
  ::close(Fds[1]);
}

namespace {

bool sameTerminals(const std::vector<Terminal> &A,
                   const std::vector<Terminal> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, N = A.size(); I != N; ++I)
    if (A[I] < B[I] || B[I] < A[I])
      return false;
  return true;
}

Heap diamondOf(unsigned Layers) {
  std::vector<GraphNode> Nodes;
  uint32_t Id = 1;
  for (unsigned L = 0; L < Layers; ++L) {
    Nodes.push_back(GraphNode{Ptr(Id), Ptr(Id + 1), Ptr(Id + 2)});
    Nodes.push_back(GraphNode{Ptr(Id + 1), Ptr(Id + 3), Ptr::null()});
    Nodes.push_back(GraphNode{Ptr(Id + 2), Ptr(Id + 3), Ptr::null()});
    Id += 3;
  }
  Nodes.push_back(GraphNode{Ptr(Id), Ptr::null(), Ptr::null()});
  return buildGraph(Nodes);
}

/// Runs the same exploration through distributedExplore at 2 and 4 shards
/// (and through the public hook path at 1 shard) and checks bit-identity
/// against the in-process baseline, with POR off and on.
void expectShardIdentity(const ProgRef &P, const GlobalState &Initial,
                         EngineOptions Opts) {
  for (PorMode Mode : {PorMode::Off, PorMode::On}) {
    Opts.Por = Mode;
    Opts.Shards = 1;
    RunResult Base = explore(P, Initial, Opts);
    ASSERT_TRUE(Base.complete()) << Base.FailureNote;
    EXPECT_FALSE(Base.Terminals.empty());
    for (unsigned Shards : {2u, 4u}) {
      RunResult R = distributedExplore(P, Initial, Opts, {}, Shards);
      EXPECT_EQ(R.Safe, Base.Safe) << "shards=" << Shards;
      EXPECT_EQ(R.Exhausted, Base.Exhausted) << "shards=" << Shards;
      EXPECT_TRUE(sameTerminals(R.Terminals, Base.Terminals))
          << "shards=" << Shards;
      EXPECT_EQ(R.ConfigsExplored, Base.ConfigsExplored)
          << "shards=" << Shards;
      EXPECT_EQ(R.ActionSteps, Base.ActionSteps) << "shards=" << Shards;
      EXPECT_EQ(R.EnvSteps, Base.EnvSteps) << "shards=" << Shards;
      EXPECT_EQ(R.DedupHits, Base.DedupHits) << "shards=" << Shards;
      EXPECT_EQ(R.VisitedNodes, Base.VisitedNodes) << "shards=" << Shards;
    }
  }
}

/// Restores the process-wide shard default on scope exit.
struct ShardDefaultGuard {
  ~ShardDefaultGuard() { setDefaultShards(0); }
};

/// A coarse-grained increment client over the given lock, packaged with
/// its definitions, initial state (counter = EnvTotal, owned by the
/// environment) and engine options.
struct IncrCase {
  LockProtocol P;
  std::shared_ptr<DefTable> Defs;
  ProgRef Main;
  GlobalState Initial;
  EngineOptions Opts;
};

IncrCase makeIncrCase(const LockFactory &Factory, PCMTypeRef TokenType,
                      bool Parallel, bool EnvInterference,
                      uint64_t EnvTotal) {
  constexpr Label PvLbl = 1, LkLbl = 2;
  IncrCase C;
  C.P = Factory(PvLbl, LkLbl, counterResourceModel(LkLbl, /*EnvCap=*/1));
  C.Defs = std::make_shared<DefTable>();
  defineIncrProgram(C.P, *C.Defs);
  C.Main = Parallel ? Prog::par(Prog::call("incr", {}),
                                Prog::call("incr", {}))
                    : Prog::call("incr", {});
  PCMTypeRef SelfType = PCMType::pairOf(TokenType, PCMType::nat());
  C.Initial.addLabel(C.P.Pv, PCMType::heap(), Heap(),
                     PCMVal::ofHeap(Heap()), /*EnvClosed=*/false);
  PCMVal EnvSelf = SelfType->unit();
  EnvSelf = PCMVal::makePair(EnvSelf.first(), PCMVal::ofNat(EnvTotal));
  C.Initial.addLabel(
      C.P.Lk, SelfType,
      C.P.InitialJoint(Heap::singleton(
          counterResourceCell(),
          Val::ofInt(static_cast<int64_t>(EnvTotal)))),
      std::move(EnvSelf), /*EnvClosed=*/false);
  C.Opts.Ambient = C.P.C;
  C.Opts.EnvInterference = EnvInterference;
  C.Opts.Defs = C.Defs.get();
  C.Opts.Jobs = 1;
  C.Opts.Shards = 1;
  return C;
}

} // namespace

TEST(DistEngine, SpanTreeClosedWorldShardIdentity) {
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  expectShardIdentity(makeSpanRootProg(Case, Ptr(1)),
                      spanRootState(Case, diamondOf(1)), Opts);
}

TEST(DistEngine, TreiberPopUnderInterferenceShardIdentity) {
  TreiberCase Case = makeTreiberCase(1, 2, /*EnvHistCap=*/2);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  expectShardIdentity(Prog::call("pop", {}),
                      treiberState(Case, {7, 5}, 0, 1), Opts);
}

TEST(DistEngine, ShardedWorkersComposeWithThreadTeams) {
  // --shards and --jobs compose: each forked worker runs its own thread
  // team and the merged result is still bit-identical.
  TreiberCase Case = makeTreiberCase(1, 2, /*EnvHistCap=*/2);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  Opts.Jobs = 2;
  expectShardIdentity(
      Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(4)}),
      treiberState(Case, {}, 1, 1), Opts);
}

TEST(DistEngine, SessionsThroughHookMatchBaseline) {
  ShardDefaultGuard Guard;
  installDistributedEngine();
  for (auto MakeSession : {makeSpinLockSession, makeTicketLockSession}) {
    setDefaultShards(0);
    SessionReport Base = MakeSession().run();
    setDefaultShards(2);
    SessionReport Sharded = MakeSession().run();
    EXPECT_EQ(Sharded.AllPassed, Base.AllPassed) << Base.Program;
    EXPECT_TRUE(Base.AllPassed) << Base.Program;
    EXPECT_EQ(Sharded.totalObligations(), Base.totalObligations());
    EXPECT_EQ(Sharded.totalChecks(), Base.totalChecks()) << Base.Program;
  }
}

TEST(DistEngine, LockClientsReduceUnderPor) {
  // The spin/ticket lock footprints must buy an actual reduction, not
  // just compile. A mutex serializes every state-changing step, so the
  // reachable config set cannot shrink for a lock client; what POR prunes
  // is redundant *transitions* — failed spin probes and postponed env
  // steps whose targets dedup into already-visited configs. Assert
  // strictly fewer explored steps with verdict, terminals, and config set
  // intact.
  struct Variant {
    LockFactory Factory;
    PCMTypeRef Token;
    bool Parallel;
    bool Env;
    const char *Tag;
  };
  const Variant Variants[] = {
      {casLockFactory(), PCMType::mutex(), true, false, "cas parallel"},
      {ticketLockFactory(), PCMType::ptrSet(), true, false,
       "ticket parallel"},
      {ticketLockFactory(), PCMType::ptrSet(), false, true,
       "ticket sequential open"},
  };
  for (const Variant &V : Variants) {
    IncrCase C = makeIncrCase(V.Factory, V.Token, V.Parallel, V.Env,
                              /*EnvTotal=*/0);
    C.Opts.Por = PorMode::Off;
    RunResult Full = explore(C.Main, C.Initial, C.Opts);
    C.Opts.Por = PorMode::On;
    RunResult Red = explore(C.Main, C.Initial, C.Opts);

    ASSERT_TRUE(Full.complete() && Red.complete()) << V.Tag;
    EXPECT_TRUE(Full.Safe && Red.Safe) << V.Tag;
    EXPECT_TRUE(sameTerminals(Full.Terminals, Red.Terminals)) << V.Tag;
    EXPECT_EQ(Red.ConfigsExplored, Full.ConfigsExplored) << V.Tag;
    EXPECT_LT(Red.ActionSteps + Red.EnvSteps,
              Full.ActionSteps + Full.EnvSteps)
        << V.Tag;
  }
}

TEST(DistEngine, LockClientShardIdentity) {
  // The lock-client explorations (whose POR behaviour the previous test
  // pins) stay bit-identical when sharded, POR off and on.
  IncrCase Cas = makeIncrCase(casLockFactory(), PCMType::mutex(),
                              /*Parallel=*/true, /*EnvInterference=*/false,
                              /*EnvTotal=*/0);
  expectShardIdentity(Cas.Main, Cas.Initial, Cas.Opts);
  IncrCase Ticket = makeIncrCase(ticketLockFactory(), PCMType::ptrSet(),
                                 /*Parallel=*/false,
                                 /*EnvInterference=*/true, /*EnvTotal=*/0);
  expectShardIdentity(Ticket.Main, Ticket.Initial, Ticket.Opts);
}

TEST(DistEngine, CompressedAndLegacyWireAgreeUnderReductions) {
  // The dictionary protocol must be invisible to results: compressed and
  // legacy wire encodings yield bit-identical merged verdicts, terminals,
  // and counters at every shard count, composed with dynamic POR and
  // symmetry reduction.
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  Opts.Por = PorMode::Dynamic;
  Opts.Symmetry = SymMode::On;
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  GlobalState S0 = spanRootState(Case, diamondOf(1));
  RunResult Base = explore(Main, S0, Opts);
  ASSERT_TRUE(Base.complete()) << Base.FailureNote;
  for (unsigned Shards : {1u, 2u, 4u}) {
    for (bool Compress : {true, false}) {
      SCOPED_TRACE(testing::Message() << "shards=" << Shards
                                      << " compress=" << Compress);
      setDistCompress(Compress);
      RunResult R = Shards == 1
                        ? explore(Main, S0, Opts)
                        : distributedExplore(Main, S0, Opts, {}, Shards);
      EXPECT_EQ(R.Safe, Base.Safe);
      EXPECT_EQ(R.Exhausted, Base.Exhausted);
      EXPECT_TRUE(sameTerminals(R.Terminals, Base.Terminals));
      EXPECT_EQ(R.ConfigsExplored, Base.ConfigsExplored);
      EXPECT_EQ(R.ActionSteps, Base.ActionSteps);
      EXPECT_EQ(R.EnvSteps, Base.EnvSteps);
      EXPECT_EQ(R.DedupHits, Base.DedupHits);
      EXPECT_EQ(R.VisitedNodes, Base.VisitedNodes);
    }
  }
  setDistCompress(true);
}

TEST(DistEngine, CompressedWireComposesWithObligationCache) {
  // Sharded sessions under --cache=rw: both wire encodings populate the
  // obligation store and replay from it with the same report. The store
  // is reset between encodings so each genuinely exercises its wire path.
  ShardDefaultGuard Guard;
  installDistributedEngine();
  cache::CacheMode SavedMode = cache::defaultCacheMode();
  setDefaultShards(0);
  SessionReport Base = makeSpinLockSession().run();
  ASSERT_TRUE(Base.AllPassed) << Base.Program;
  setDefaultShards(2);
  for (bool Compress : {true, false}) {
    SCOPED_TRACE(testing::Message() << "compress=" << Compress);
    setDistCompress(Compress);
    cache::resetActiveStore();
    cache::setDefaultCacheMode(cache::CacheMode::Rw);
    SessionReport Cold = makeSpinLockSession().run(); // populates the store
    SessionReport Warm = makeSpinLockSession().run(); // replays from it
    EXPECT_EQ(Cold.AllPassed, Base.AllPassed);
    EXPECT_EQ(Cold.totalObligations(), Base.totalObligations());
    EXPECT_EQ(Cold.totalChecks(), Base.totalChecks());
    EXPECT_EQ(Warm.AllPassed, Base.AllPassed);
    EXPECT_EQ(Warm.totalObligations(), Base.totalObligations());
  }
  cache::setDefaultCacheMode(SavedMode);
  cache::resetActiveStore();
  setDistCompress(true);
}

TEST(DistEngine, CrashedWorkerFailsLoudly) {
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  ::setenv("FCSL_DIST_CRASH_SHARD", "1", 1);
  RunResult R = distributedExplore(makeSpanRootProg(Case, Ptr(1)),
                                   spanRootState(Case, diamondOf(1)), Opts,
                                   {}, 2);
  ::unsetenv("FCSL_DIST_CRASH_SHARD");
  // The exploration is incomplete and says so — never a silent "safe".
  EXPECT_FALSE(R.complete());
  EXPECT_TRUE(R.Exhausted);
  EXPECT_NE(R.FailureNote.find("shard 1"), std::string::npos)
      << R.FailureNote;
  EXPECT_NE(R.FailureNote.find("died"), std::string::npos) << R.FailureNote;
}

//===----------------------------------------------------------------------===//
// Service-frame codec and the unknown-message-type contract (DESIGN.md
// §15). The split pinned here: a *malformed* frame (bad header) means the
// stream cannot be trusted; a *well-framed unknown type* is a versioned
// peer speaking a newer protocol — the service path rejects the one frame
// and keeps the connection, the shard path fails the whole run loudly.
//===----------------------------------------------------------------------===//

namespace {

SessionReport sampleReport() {
  SessionReport R;
  R.Program = "ticket_lock";
  R.AllPassed = false;
  for (int I = 0; I != 5; ++I) {
    R.PerCategory[I].Obligations = 3 + I;
    R.PerCategory[I].Checks = 100 * I + 7;
    R.PerCategory[I].ElapsedMs = 1.5 * I;
  }
  R.TotalMs = 123.25;
  R.Failures = {"ticket_lock/unlock: stability violated"};
  R.Cache.Hits = 4;
  R.Cache.Misses = 2;
  R.Cache.Stores = 2;
  R.Cache.ReplayedChecks = 321;
  R.Cache.ReplayedUs = 17;
  return R;
}

} // namespace

TEST(DistWire, ServiceFramesRoundTrip) {
  SubmitSessionMsg Submit;
  Submit.Session = "Ticketed lock";
  Submit.Por = 3;
  Submit.Symmetry = 2;
  Submit.Cache = 2;
  Submit.Jobs = 4;
  Submit.WantProgress = true;

  ProgressMsg Prog;
  Prog.Completed = 3;
  Prog.Total = 17;
  Prog.Category = 1;
  Prog.Name = "lock_acquire";
  Prog.Passed = true;
  Prog.FromCache = true;
  Prog.ElapsedUs = 0;

  ReportMsg Rep;
  Rep.Ok = true;
  Rep.ServedFromCache = true;
  Rep.ElapsedUs = 812;
  Rep.Report = sampleReport();

  CacheStatsMsg Stats;
  Stats.Query = false;
  Stats.RequestsServed = 12;
  Stats.SessionsRun = 2;
  Stats.ServedFromCache = 10;
  Stats.ObligationsReplayed = 170;
  Stats.Rejected = 1;
  Stats.UnknownFrames = 1;
  Stats.MalformedFrames = 2;
  Stats.StoreRecords = 99;
  Stats.StoreBytes = 4096;
  Stats.UptimeUs = 1000000;

  ShutdownMsg Shut;
  Shut.Ack = true;

  for (size_t Chunk : {size_t{1}, size_t{7}, size_t{1 << 20}}) {
    std::optional<WireMsg> M = throughBuffer(frameSubmitSession(Submit), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::SubmitSession);
    EXPECT_EQ(M->Submit, Submit);

    M = throughBuffer(frameProgress(Prog), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::Progress);
    EXPECT_EQ(M->Prog, Prog);

    M = throughBuffer(frameReport(Rep), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::Report);
    EXPECT_EQ(M->Rep, Rep);

    M = throughBuffer(frameCacheStats(Stats), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::CacheStats);
    EXPECT_EQ(M->CStats, Stats);

    M = throughBuffer(frameShutdown(Shut), Chunk);
    ASSERT_TRUE(M);
    EXPECT_EQ(M->Type, MsgType::Shutdown);
    EXPECT_EQ(M->Shut, Shut);
  }
}

TEST(DistWire, ReportEqualityIsWireBitIdentity) {
  ReportMsg A;
  A.Report = sampleReport();
  ReportMsg B = A;
  EXPECT_EQ(A, B);
  B.Report.Cache.Hits++; // any payload drift must break equality.
  EXPECT_FALSE(A == B);
}

TEST(DistWire, ClassifiesFramesByHeaderAndTag) {
  // A well-formed known frame.
  std::vector<uint8_t> Frame = frameDrain(DrainMsg{});
  std::vector<uint8_t> Payload(Frame.begin() + 4, Frame.end());
  EXPECT_EQ(classifyFrame(Payload), FrameClass::Known);

  // Valid header, tag one past the known range: well-framed but unknown.
  Encoder Hdr;
  encodeHeader(Hdr);
  std::vector<uint8_t> Unknown = Payload;
  Unknown[Hdr.buffer().size()] = MaxKnownMsgTag + 1;
  EXPECT_EQ(classifyFrame(Unknown), FrameClass::UnknownType);
  // decodeFrame still refuses it — classification never loosens decoding.
  EXPECT_EQ(decodeFrame(Unknown), std::nullopt);

  // A known-but-truncated body stays Known (classification reads only the
  // header and tag; the decode failure is the body's problem).
  std::vector<uint8_t> Truncated(Payload.begin(), Payload.end() - 1);
  EXPECT_EQ(classifyFrame(Truncated), FrameClass::Known);

  // Bad magic or an empty payload: malformed, the stream is untrusted.
  std::vector<uint8_t> BadMagic = Payload;
  BadMagic[0] ^= 0xFF;
  EXPECT_EQ(classifyFrame(BadMagic), FrameClass::Malformed);
  EXPECT_EQ(classifyFrame(std::vector<uint8_t>{}), FrameClass::Malformed);
}

TEST(DistEngine, UnknownMessageTypeFailsRunLoudly) {
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  ::setenv("FCSL_DIST_UNKNOWN_SHARD", "1", 1);
  RunResult R = distributedExplore(makeSpanRootProg(Case, Ptr(1)),
                                   spanRootState(Case, diamondOf(1)), Opts,
                                   {}, 2);
  ::unsetenv("FCSL_DIST_UNKNOWN_SHARD");
  // Dropping unrecognized protocol traffic silently would let a partial
  // exploration read as a verified one; the run must say it is incomplete.
  EXPECT_FALSE(R.complete());
  EXPECT_TRUE(R.Exhausted);
  EXPECT_NE(R.FailureNote.find("unknown message type"), std::string::npos)
      << R.FailureNote;
  EXPECT_NE(R.FailureNote.find("shard 1"), std::string::npos)
      << R.FailureNote;
}
