//===- tests/flatcombiner_test.cpp - Flat combiner tests -------------------===//
//
// Part of fcsl-cpp. Includes a scripted demonstration that *helping*
// works: the environment combines the observing thread's request, yet the
// operation is ascribed to the requester.
//
//===----------------------------------------------------------------------===//

#include "structures/FlatCombiner.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Fc = 1;
} // namespace

TEST(FlatCombinerTest, PublishCombineCollectCycle) {
  FlatCombinerCase Case = makeFlatCombinerCase(Fc, 0);
  GlobalState GS = flatCombinerState(Case, 1);
  View S0 = GS.viewFor(rootThread());

  // Publish my push request.
  auto P = Case.Publish->step(
      S0, {Val::ofPtr(Case.Slot1), Val::ofInt(FcPush), Val::ofInt(4)});
  ASSERT_TRUE(P.has_value());
  View S1 = (*P)[0].Post;

  // Acquire the combiner lock and combine my own slot (self-helping).
  auto L = Case.TryLockFc->step(S1, {});
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ((*L)[0].Result, Val::ofBool(true));
  View S2 = (*L)[0].Post;
  auto C = Case.CombineSlot->step(S2, {Val::ofPtr(Case.Slot1)});
  ASSERT_TRUE(C.has_value());
  View S3 = (*C)[0].Post;
  // The stack now holds the value; the entry is parked in the slot.
  EXPECT_EQ(S3.joint(Fc).lookup(Case.StackCell),
            Val::pair(Val::ofInt(4), Val::unit()));
  EXPECT_EQ(S3.self(Fc).second().second().getHist().size(), 0u);

  auto R = Case.ReleaseFc->step(S3, {});
  ASSERT_TRUE(R.has_value());
  View S4 = (*R)[0].Post;

  // Collect: the entry lands in MY history.
  auto K = Case.TryCollect->step(S4, {Val::ofPtr(Case.Slot1)});
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ((*K)[0].Result.first(), Val::ofBool(true));
  const View &S5 = (*K)[0].Post;
  EXPECT_EQ(S5.self(Fc).second().second().getHist().size(), 1u);
  EXPECT_TRUE(Case.C->coherent(S5));
}

TEST(FlatCombinerTest, HelpingAscribesToRequester) {
  // The ENVIRONMENT plays combiner for my request: simulate via the
  // concurroid's subjective transitions — env locks, combines my slot,
  // releases; then I collect. My history gains the entry even though I
  // never held the lock.
  FlatCombinerCase Case = makeFlatCombinerCase(Fc, /*EnvHistCap=*/4);
  GlobalState GS = flatCombinerState(Case, 1);
  View S0 = GS.viewFor(rootThread());
  auto P = Case.Publish->step(
      S0, {Val::ofPtr(Case.Slot1), Val::ofInt(FcPush), Val::ofInt(4)});
  ASSERT_TRUE(P.has_value());
  View Mine = (*P)[0].Post;

  // Environment side: find env successors that combine my request.
  bool EnvCombinedMine = false;
  for (const View &AfterLock : Case.C->envSuccessors(Mine)) {
    // Lock taken by env?
    if (!AfterLock.joint(Fc).lookup(Case.LockCell).getBool())
      continue;
    for (const View &AfterCombine : Case.C->envSuccessors(AfterLock)) {
      const Val &Slot = AfterCombine.joint(Fc).tryLookup(Case.Slot1)
                            ? AfterCombine.joint(Fc).lookup(Case.Slot1)
                            : Val::unit();
      if (!Slot.isPair() || !Slot.first().isBool())
        continue; // My slot not Done yet.
      EnvCombinedMine = true;
      // My own history is still untouched (helping in flight)...
      EXPECT_EQ(
          AfterCombine.self(Fc).second().second().getHist().size(), 0u);
      // ...until I collect, which ascribes the push to me.
      auto K =
          Case.TryCollect->step(AfterCombine, {Val::ofPtr(Case.Slot1)});
      ASSERT_TRUE(K.has_value());
      const History &MineH =
          (*K)[0].Post.self(Fc).second().second().getHist();
      ASSERT_EQ(MineH.size(), 1u);
      EXPECT_EQ(MineH.begin()->second.After,
                Val::pair(Val::ofInt(4), MineH.begin()->second.Before));
    }
  }
  EXPECT_TRUE(EnvCombinedMine)
      << "interference never combined the published request";
}

TEST(FlatCombinerTest, CombineWithoutLockUnsafe) {
  FlatCombinerCase Case = makeFlatCombinerCase(Fc, 0);
  View S0 = flatCombinerState(Case, 1).viewFor(rootThread());
  EXPECT_FALSE(
      Case.CombineSlot->step(S0, {Val::ofPtr(Case.Slot1)}).has_value());
  EXPECT_FALSE(Case.ReleaseFc->step(S0, {}).has_value());
}

TEST(FlatCombinerTest, CollectForeignSlotUnsafe) {
  FlatCombinerCase Case = makeFlatCombinerCase(Fc, 0);
  View S0 = flatCombinerState(Case, 1).viewFor(rootThread());
  // Slot 2 belongs to the environment.
  EXPECT_FALSE(
      Case.TryCollect->step(S0, {Val::ofPtr(Case.Slot2)}).has_value());
}

TEST(FlatCombinerTest, FlatCombineClosedWorld) {
  FlatCombinerCase Case = makeFlatCombinerCase(Fc, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  ProgRef Main = Prog::call(
      "flat_combine",
      {Expr::litPtr(Case.Slot1), Expr::litInt(FcPush), Expr::litInt(4)});
  RunResult R = explore(Main, flatCombinerState(Case, 1), Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result, Val::unit());
  EXPECT_EQ(R.Terminals[0]
                .FinalView.self(Fc)
                .second()
                .second()
                .getHist()
                .size(),
            1u);
}

TEST(FlatCombinerTest, SessionPasses) {
  SessionReport Report = makeFlatCombinerSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
}
