//===- tests/parallel_engine_test.cpp - Parallel exploration tests ---------===//
//
// Part of fcsl-cpp. Checks the multi-worker interleaving engine: explore()
// must return bit-identical terminals, verdicts and counters for any job
// count on the Treiber-stack and spanning-tree case studies, a seeded
// unsafe program must still produce a non-empty counterexample schedule
// under parallel exploration, and the spec layer's instance fan-out must
// agree with its serial run. Part of the TSan stage of scripts/verify.sh.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Entangle.h"
#include "concurroid/Priv.h"
#include "spec/Verifier.h"
#include "structures/SpanTree.h"
#include "structures/TreiberStack.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

const unsigned JobCounts[] = {1, 2, 8};

bool sameTerminals(const std::vector<Terminal> &A,
                   const std::vector<Terminal> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, N = A.size(); I != N; ++I)
    if (A[I] < B[I] || B[I] < A[I])
      return false;
  return true;
}

/// Runs the same exploration at every job count and checks the results
/// against the serial baseline: identical terminals, verdicts and (for
/// complete explorations) identical counters.
void expectDeterministic(const ProgRef &P, const GlobalState &Initial,
                         EngineOptions Opts) {
  Opts.Jobs = 1;
  RunResult Base = explore(P, Initial, Opts);
  ASSERT_TRUE(Base.complete()) << Base.FailureNote;
  EXPECT_FALSE(Base.Terminals.empty());
  for (unsigned Jobs : JobCounts) {
    Opts.Jobs = Jobs;
    RunResult R = explore(P, Initial, Opts);
    EXPECT_EQ(R.Safe, Base.Safe) << "jobs=" << Jobs;
    EXPECT_EQ(R.Exhausted, Base.Exhausted) << "jobs=" << Jobs;
    EXPECT_TRUE(sameTerminals(R.Terminals, Base.Terminals))
        << "jobs=" << Jobs;
    EXPECT_EQ(R.ConfigsExplored, Base.ConfigsExplored) << "jobs=" << Jobs;
    EXPECT_EQ(R.ActionSteps, Base.ActionSteps) << "jobs=" << Jobs;
    EXPECT_EQ(R.EnvSteps, Base.EnvSteps) << "jobs=" << Jobs;
    EXPECT_EQ(R.DedupHits, Base.DedupHits) << "jobs=" << Jobs;
  }
}

Heap diamondOf(unsigned Layers) {
  std::vector<GraphNode> Nodes;
  uint32_t Id = 1;
  for (unsigned L = 0; L < Layers; ++L) {
    Nodes.push_back(GraphNode{Ptr(Id), Ptr(Id + 1), Ptr(Id + 2)});
    Nodes.push_back(GraphNode{Ptr(Id + 1), Ptr(Id + 3), Ptr::null()});
    Nodes.push_back(GraphNode{Ptr(Id + 2), Ptr(Id + 3), Ptr::null()});
    Id += 3;
  }
  Nodes.push_back(GraphNode{Ptr(Id), Ptr::null(), Ptr::null()});
  return buildGraph(Nodes);
}

} // namespace

TEST(ParallelEngineTest, SpanTreeClosedWorldDeterministic) {
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  expectDeterministic(makeSpanRootProg(Case, Ptr(1)),
                      spanRootState(Case, diamondOf(1)), Opts);
  expectDeterministic(makeSpanRootProg(Case, Ptr(1)),
                      spanRootState(Case, figure2Graph()), Opts);
}

TEST(ParallelEngineTest, SpanTreeOpenWorldDeterministic) {
  SpanTreeCase Case = makeSpanTreeCase(1, 2);
  std::vector<GraphNode> Nodes = {
      GraphNode{Ptr(1), Ptr(2), Ptr(3)},
      GraphNode{Ptr(2), Ptr::null(), Ptr::null()},
      GraphNode{Ptr(3), Ptr::null(), Ptr::null()}};
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  expectDeterministic(Prog::call("span", {Expr::litPtr(Ptr(1))}),
                      spanOpenState(Case, buildGraph(Nodes), {}), Opts);
}

TEST(ParallelEngineTest, TreiberPopUnderInterferenceDeterministic) {
  TreiberCase Case = makeTreiberCase(1, 2, /*EnvHistCap=*/2);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  expectDeterministic(Prog::call("pop", {}),
                      treiberState(Case, {7, 5}, 0, 1), Opts);
}

TEST(ParallelEngineTest, TreiberPushUnderInterferenceDeterministic) {
  TreiberCase Case = makeTreiberCase(1, 2, /*EnvHistCap=*/2);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  expectDeterministic(
      Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(4)}),
      treiberState(Case, {}, 1, 1), Opts);
}

namespace {

constexpr Label Pv = 1;
constexpr Label Ct = 2;
const Ptr Cell = Ptr(1);

/// A counter world whose `probe` action is only safe while the counter is
/// below 2: running it after two increments is a seeded safety violation
/// reached mid-exploration, not at the initial configuration.
struct SeededWorld {
  ConcurroidRef C;
  ActionRef Incr;
  ActionRef Probe;
  DefTable Defs;
};

SeededWorld makeSeededWorld() {
  auto Coh = [](const View &S) {
    if (!S.hasLabel(Ct))
      return false;
    const Val *V = S.joint(Ct).tryLookup(Cell);
    if (!V || !V->isInt())
      return false;
    return V->getInt() == static_cast<int64_t>(S.self(Ct).getNat() +
                                               S.other(Ct).getNat());
  };
  auto C = makeConcurroid("SeededCounter",
                          {OwnedLabel{Ct, "ct", PCMType::nat()}}, Coh);
  SeededWorld World;
  World.C = entangle(makePriv(Pv), C);
  World.Incr = makeAction(
      "incr", World.C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *V = Pre.joint(Ct).tryLookup(Cell);
        if (!V)
          return std::nullopt;
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(Cell, Val::ofInt(V->getInt() + 1));
        Post.setJoint(Ct, std::move(Joint));
        Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return std::vector<ActOutcome>{{*V, std::move(Post)}};
      });
  World.Probe = makeAction(
      "probe", World.C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *V = Pre.joint(Ct).tryLookup(Cell);
        if (!V || V->getInt() >= 2)
          return std::nullopt; // Unsafe once both increments landed.
        return std::vector<ActOutcome>{{*V, Pre}};
      });
  return World;
}

GlobalState seededState() {
  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.addLabel(Ct, PCMType::nat(), Heap::singleton(Cell, Val::ofInt(0)),
              PCMVal::ofNat(0), false);
  return GS;
}

} // namespace

TEST(ParallelEngineTest, SeededUnsafeProgramKeepsFailureTrace) {
  SeededWorld W = makeSeededWorld();
  // Both increments run in parallel, then the probe fires in a state
  // where it is unsafe; every worker count must find the violation and
  // reconstruct a schedule from the winning worker's parent chain.
  ProgRef P = Prog::seq(Prog::par(Prog::act(W.Incr, {}),
                                  Prog::act(W.Incr, {})),
                        Prog::act(W.Probe, {}));
  for (unsigned Jobs : JobCounts) {
    EngineOptions Opts;
    Opts.Ambient = W.C;
    Opts.EnvInterference = false;
    Opts.Defs = &W.Defs;
    Opts.Jobs = Jobs;
    RunResult R = explore(P, seededState(), Opts);
    EXPECT_FALSE(R.Safe) << "jobs=" << Jobs;
    EXPECT_NE(R.FailureNote.find("probe"), std::string::npos)
        << "jobs=" << Jobs;
    ASSERT_FALSE(R.FailureTrace.empty()) << "jobs=" << Jobs;
    // The failing step closes the schedule, and the two increments that
    // seeded the unsafe state appear before it.
    EXPECT_NE(R.FailureTrace.back().find("UNSAFE"), std::string::npos)
        << "jobs=" << Jobs;
    EXPECT_GE(R.FailureTrace.size(), 3u) << "jobs=" << Jobs;
  }
}

TEST(ParallelEngineTest, ExhaustionReportedFromAnyWorker) {
  SeededWorld W = makeSeededWorld();
  W.Defs.define(
      "count_up",
      FuncDef{{},
              Prog::bind(Prog::act(W.Incr, {}), "v",
                         Prog::ifThenElse(
                             Expr::lt(Expr::litInt(1000), Expr::var("v")),
                             Prog::retUnit(),
                             Prog::call("count_up", {})))});
  for (unsigned Jobs : JobCounts) {
    EngineOptions Opts;
    Opts.Ambient = W.C;
    Opts.EnvInterference = false;
    Opts.Defs = &W.Defs;
    Opts.MaxConfigs = 50;
    Opts.Jobs = Jobs;
    RunResult R = explore(Prog::call("count_up", {}), seededState(), Opts);
    EXPECT_TRUE(R.Exhausted) << "jobs=" << Jobs;
    EXPECT_FALSE(R.complete()) << "jobs=" << Jobs;
    EXPECT_LE(R.ConfigsExplored, 50u) << "jobs=" << Jobs;
  }
}

TEST(ParallelEngineTest, VerifyTripleInstanceFanoutMatchesSerial) {
  TreiberCase Case = makeTreiberCase(1, 2, /*EnvHistCap=*/2);
  Spec S;
  S.Name = "pop_total";
  S.C = Case.C;
  S.Pre = assertTrue();
  S.PostName = "pop returns a (flag, value) pair";
  S.Post = [](const Val &R, const View &, const View &) {
    return R.isPair() && R.first().isBool();
  };
  ProgRef Main = Prog::call("pop", {});
  std::vector<VerifyInstance> Instances = {
      VerifyInstance{treiberState(Case, {}, 0, 1), {}},
      VerifyInstance{treiberState(Case, {5}, 0, 1), {}},
      VerifyInstance{treiberState(Case, {7, 5}, 0, 1), {}}};

  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  Opts.Jobs = 1;
  VerifyResult Serial = verifyTriple(Main, S, Instances, Opts);
  ASSERT_TRUE(Serial.Holds) << Serial.FailureNote;
  for (unsigned Jobs : {2u, 8u}) {
    Opts.Jobs = Jobs;
    VerifyResult R = verifyTriple(Main, S, Instances, Opts);
    EXPECT_EQ(R.Holds, Serial.Holds) << "jobs=" << Jobs;
    EXPECT_EQ(R.InstancesChecked, Serial.InstancesChecked);
    EXPECT_EQ(R.ConfigsExplored, Serial.ConfigsExplored);
    EXPECT_EQ(R.ActionSteps, Serial.ActionSteps);
    EXPECT_EQ(R.EnvSteps, Serial.EnvSteps);
    EXPECT_EQ(R.TerminalsChecked, Serial.TerminalsChecked);
  }

  Opts.Jobs = 2;
  std::vector<size_t> Pre =
      inferPre(Main, S.Post, Instances, Opts);
  Opts.Jobs = 1;
  EXPECT_EQ(Pre, inferPre(Main, S.Post, Instances, Opts));
}
