//===- tests/infer_test.cpp - Strongest-post / pre-inference tests ---------===//
//
// Part of fcsl-cpp. The synthesized strongest postconditions of the
// paper's Section 5.1 and the spec-weakening view of Section 5.2, as
// decision procedures.
//
//===----------------------------------------------------------------------===//

#include "structures/TreiberStack.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Tr = 2;
} // namespace

TEST(StrongestPostTest, EnumeratesExactTerminalSet) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;

  // pop on the stack [5]: exactly one terminal, result (true, 5).
  auto Post = strongestPost(
      Prog::call("pop", {}),
      VerifyInstance{treiberState(Case, {5}, 0, 0), {}}, Opts);
  ASSERT_TRUE(Post.has_value());
  ASSERT_EQ(Post->size(), 1u);
  EXPECT_EQ((*Post)[0].Result,
            Val::pair(Val::ofBool(true), Val::ofInt(5)));
}

TEST(StrongestPostTest, UnsafeProgramsHaveNoPost) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  // Pushing an unowned node is unsafe: no strongest post exists.
  auto Post = strongestPost(
      Prog::act(Case.TryPush, {Expr::litPtr(Ptr(20)), Expr::litInt(1),
                               Expr::litPtr(Ptr::null())}),
      VerifyInstance{treiberState(Case, {}, 0, 0), {}}, Opts);
  EXPECT_FALSE(Post.has_value());
}

TEST(InferPreTest, SelectsExactlyTheValidInitialStates) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;

  // Postcondition: pop returns the value 5.
  PostFn PopsFive = [](const Val &R, const View &, const View &) {
    return R == Val::pair(Val::ofBool(true), Val::ofInt(5));
  };
  std::vector<VerifyInstance> Candidates = {
      VerifyInstance{treiberState(Case, {5}, 0, 0), {}},    // yes
      VerifyInstance{treiberState(Case, {7}, 0, 0), {}},    // no
      VerifyInstance{treiberState(Case, {5, 7}, 0, 0), {}}, // yes
      VerifyInstance{treiberState(Case, {}, 0, 0), {}},     // no (empty)
  };
  std::vector<size_t> Valid =
      inferPre(Prog::call("pop", {}), PopsFive, Candidates, Opts);
  EXPECT_EQ(Valid, (std::vector<size_t>{0, 2}));
}

TEST(InferPreTest, UnsafeCandidatesExcluded) {
  TreiberCase Case = makeTreiberCase(Pv, Tr, 0);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;

  // push(20, 1) needs node 20 privately owned: only candidate 1 works.
  PostFn Any = [](const Val &, const View &, const View &) {
    return true;
  };
  std::vector<VerifyInstance> Candidates = {
      VerifyInstance{treiberState(Case, {}, 0, 0), {}}, // unsafe: no node
      VerifyInstance{treiberState(Case, {}, 1, 0), {}}, // ok
  };
  ProgRef Push =
      Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(1)});
  std::vector<size_t> Valid = inferPre(Push, Any, Candidates, Opts);
  EXPECT_EQ(Valid, std::vector<size_t>{1});
}
