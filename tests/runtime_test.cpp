//===- tests/runtime_test.cpp - Executable structure tests -----------------===//
//
// Part of fcsl-cpp. Cross-validates the runtime structures against their
// sequential specs with the linearizability checker, and checks the
// runtime spanning tree against the verified property.
//
//===----------------------------------------------------------------------===//

#include "lincheck/LinCheck.h"
#include "runtime/RtFlatCombiner.h"
#include "runtime/RtLockedStack.h"
#include "runtime/RtPairSnapshot.h"
#include "runtime/RtSpanTree.h"
#include "runtime/RtSpinLock.h"
#include "runtime/RtTicketLock.h"
#include "runtime/RtTreiberStack.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <thread>

using namespace fcsl;

TEST(RtLockTest, SpinLockMutualExclusion) {
  RtSpinLock Lock;
  int64_t Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 5000; ++I) {
        Lock.lock();
        ++Counter;
        Lock.unlock();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter, 20000);
}

TEST(RtLockTest, TicketLockMutualExclusionAndFairness) {
  RtTicketLock Lock;
  int64_t Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 5000; ++I) {
        Lock.lock();
        ++Counter;
        Lock.unlock();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter, 20000);
}

TEST(RtStackTest, TreiberSequentialLifo) {
  RtTreiberStack S;
  EXPECT_TRUE(S.isEmpty());
  EXPECT_FALSE(S.pop().has_value());
  S.push(1);
  S.push(2);
  EXPECT_EQ(S.pop(), std::optional<int64_t>(2));
  EXPECT_EQ(S.pop(), std::optional<int64_t>(1));
  EXPECT_FALSE(S.pop().has_value());
}

namespace {

/// Hammers a stack-like structure from several threads while recording a
/// history, then checks linearizability.
template <typename PushFn, typename PopFn>
ConcurrentHistory recordStackHistory(PushFn Push, PopFn Pop,
                                     unsigned Threads, unsigned OpsEach) {
  HistoryRecorder Rec;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Rng R(1000 + T);
      for (unsigned I = 0; I < OpsEach; ++I) {
        if (R.chance(1, 2)) {
          int64_t V = static_cast<int64_t>(T * 100 + I + 1);
          uint64_t Inv = Rec.invoke();
          Push(T, V);
          Rec.record(T, "push", Val::ofInt(V), Val::unit(), Inv);
        } else {
          uint64_t Inv = Rec.invoke();
          std::optional<int64_t> Out = Pop(T);
          Rec.record(T, "pop", Val::unit(),
                     Val::ofInt(Out.value_or(0)), Inv);
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();
  return Rec.take();
}

} // namespace

TEST(RtStackTest, TreiberHistoriesLinearizable) {
  RtTreiberStack S;
  ConcurrentHistory H = recordStackHistory(
      [&](unsigned, int64_t V) { S.push(V); },
      [&](unsigned) { return S.pop(); }, 3, 6);
  LinResult R = checkLinearizable(H, stackSeqSpec());
  EXPECT_TRUE(R.Linearizable) << "history size " << H.size();
}

TEST(RtStackTest, LockedStackHistoriesLinearizable) {
  RtLockedStack S;
  ConcurrentHistory H = recordStackHistory(
      [&](unsigned, int64_t V) { S.push(V); },
      [&](unsigned) { return S.pop(); }, 3, 6);
  EXPECT_TRUE(checkLinearizable(H, stackSeqSpec()).Linearizable);
}

TEST(RtStackTest, FcStackHistoriesLinearizable) {
  RtFcStack S(3);
  ConcurrentHistory H = recordStackHistory(
      [&](unsigned T, int64_t V) { S.push(T, V); },
      [&](unsigned T) { return S.pop(T); }, 3, 6);
  EXPECT_TRUE(checkLinearizable(H, stackSeqSpec()).Linearizable);
}

TEST(RtSnapshotTest, SnapshotsAreConsistentCuts) {
  RtPairSnapshot Snap;
  std::atomic<bool> Stop{false};
  // Writers keep x == y mod 1000 in lockstep pairs: x = k, y = k.
  std::thread Writer([&] {
    for (uint32_t K = 1; K <= 2000; ++K) {
      Snap.writeX(K);
      Snap.writeY(K);
    }
    Stop.store(true);
  });
  // Readers: a snapshot (x, y) must satisfy y == x or y == x - 1 (y lags
  // by at most the in-flight write).
  std::thread Reader([&] {
    while (!Stop.load()) {
      auto [X, Y] = Snap.readPair();
      EXPECT_TRUE(Y == X || Y + 1 == X)
          << "inconsistent snapshot (" << X << ", " << Y << ")";
    }
  });
  Writer.join();
  Reader.join();
}

TEST(RtSpanTest, SpanningTreeOnFixedGraph) {
  // The Figure 2 graph (0-indexed).
  RtGraph G(5);
  G.setEdges(0, 1, 2);
  G.setEdges(1, 3, 4);
  G.setEdges(2, 4, 2);
  EXPECT_TRUE(rtSpan(G, 0));
  EXPECT_TRUE(rtIsSpanningTree(G, 0));
}

TEST(RtSpanTest, SpanningTreeOnRandomGraphs) {
  Rng R(77);
  for (int Iter = 0; Iter < 20; ++Iter) {
    unsigned N = 8 + static_cast<unsigned>(R.nextBelow(8));
    RtGraph G(N);
    for (unsigned I = 0; I < N; ++I) {
      int L = R.chance(1, 4) ? -1 : static_cast<int>(R.nextBelow(N));
      int Rr = R.chance(1, 4) ? -1 : static_cast<int>(R.nextBelow(N));
      G.setEdges(I, L, Rr);
    }
    EXPECT_TRUE(rtSpan(G, 0));
    EXPECT_TRUE(rtIsSpanningTree(G, 0)) << "N=" << N;
  }
}

TEST(RtSpanTest, SecondSpanFindsNothing) {
  RtGraph G(3);
  G.setEdges(0, 1, 2);
  EXPECT_TRUE(rtSpan(G, 0));
  EXPECT_FALSE(rtSpan(G, 0)); // Root already marked.
}
