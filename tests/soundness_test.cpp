//===- tests/soundness_test.cpp - The checks reject buggy code -------------===//
//
// Part of fcsl-cpp. Mutation tests of the verification framework itself:
// deliberately broken programs, actions and specs must be *rejected*. In
// the paper's terms, "it is too easy for a human prover to forget about
// a piece of resource-specific invariant or to miss an intermediate
// assertion that is unstable" — these tests confirm the mechanization
// catches exactly those mistakes.
//
//===----------------------------------------------------------------------===//

#include "action/ActionChecks.h"
#include "structures/CgIncrement.h"
#include "structures/FlatCombiner.h"
#include "structures/SpanTree.h"
#include "structures/SpinLock.h"
#include "structures/TreiberStack.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Sec = 2; // SpanTree / Treiber / lock label per test.
} // namespace

TEST(SoundnessTest, SpanWithoutEdgePruningRejected) {
  // A "span" that forgets lines 7-8 of Figure 1 (no nullify): on graphs
  // with sharing the result keeps cross edges and is NOT a tree.
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sec);
  ExprRef X = Expr::var("x");
  ProgRef BuggyBody = Prog::ifThenElse(
      Expr::isNull(X), Prog::ret(Expr::litBool(false)),
      Prog::bind(
          Prog::act(Case.TryMark, {X}), "b",
          Prog::ifThenElse(
              Expr::var("b"),
              Prog::bind(
                  Prog::act(Case.ReadChildL, {X}), "xl",
                  Prog::bind(
                      Prog::act(Case.ReadChildR, {X}), "xr",
                      Prog::seq(
                          Prog::par(Prog::call("span",
                                               {Expr::var("xl")}),
                                    Prog::call("span",
                                               {Expr::var("xr")})),
                          Prog::ret(Expr::litBool(true))))),
              Prog::ret(Expr::litBool(false)))));
  Case.Defs.define("span", FuncDef{{"x"}, BuggyBody});

  Spec S;
  S.Name = "buggy_span_root";
  S.C = Case.PrivOnly;
  S.Pre = assertTrue();
  S.PostName = "the result is a spanning tree";
  S.Post = [](const Val &, const View &, const View &F) {
    const Heap &G2 = F.self(Pv).getHeap();
    PtrSet All;
    for (const auto &Cell : G2)
      All.insert(Cell.first);
    return isTreeIn(G2, Ptr(1), All);
  };
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  VerifyResult R = verifyTriple(
      makeSpanRootProg(Case, Ptr(1)), S,
      {VerifyInstance{spanRootState(Case, figure2Graph()), {}}}, Opts);
  EXPECT_FALSE(R.Holds);
  EXPECT_NE(R.FailureNote.find("spanning tree"), std::string::npos);
}

TEST(SoundnessTest, SpanPruningUnconditionallyRejected) {
  // The dual bug: nullify both edges regardless of the children's
  // answers — the "tree" degenerates and no longer spans.
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sec);
  ExprRef X = Expr::var("x");
  ProgRef BuggyBody = Prog::ifThenElse(
      Expr::isNull(X), Prog::ret(Expr::litBool(false)),
      Prog::bind(
          Prog::act(Case.TryMark, {X}), "b",
          Prog::ifThenElse(
              Expr::var("b"),
              Prog::bind(
                  Prog::act(Case.ReadChildL, {X}), "xl",
                  Prog::bind(
                      Prog::act(Case.ReadChildR, {X}), "xr",
                      Prog::seq(
                          Prog::par(Prog::call("span",
                                               {Expr::var("xl")}),
                                    Prog::call("span",
                                               {Expr::var("xr")})),
                          Prog::seq(
                              Prog::act(Case.NullifyL, {X}),
                              Prog::seq(
                                  Prog::act(Case.NullifyR, {X}),
                                  Prog::ret(Expr::litBool(true))))))),
              Prog::ret(Expr::litBool(false)))));
  Case.Defs.define("span", FuncDef{{"x"}, BuggyBody});

  Spec S;
  S.Name = "overpruned_span_root";
  S.C = Case.PrivOnly;
  S.Pre = assertTrue();
  S.PostName = "the result is a spanning tree";
  S.Post = [](const Val &, const View &, const View &F) {
    const Heap &G2 = F.self(Pv).getHeap();
    PtrSet All;
    for (const auto &Cell : G2)
      All.insert(Cell.first);
    return isTreeIn(G2, Ptr(1), All);
  };
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  VerifyResult R = verifyTriple(
      makeSpanRootProg(Case, Ptr(1)), S,
      {VerifyInstance{spanRootState(Case, figure2Graph()), {}}}, Opts);
  EXPECT_FALSE(R.Holds);
}

TEST(SoundnessTest, PopForgettingHistoryBreaksCoherence) {
  // A Treiber pop that mutates the list but "forgets" the auxiliary
  // history entry: the per-step coherence check flags it immediately.
  TreiberCase Case = makeTreiberCase(Pv, Sec, 0);
  Ptr Snt = Case.Sentinel;
  Label Tr = Case.Tr;
  ActionRef BadPop = makeAction(
      "bad_pop", Case.C, 0,
      [Snt, Tr](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        Ptr Head = Pre.joint(Tr).lookup(Snt).getPtr();
        if (Head.isNull())
          return std::nullopt;
        const Val &Cell = Pre.joint(Tr).lookup(Head);
        View Post = Pre;
        Heap Joint = Pre.joint(Tr);
        Joint.update(Snt, Cell.second());
        Joint.remove(Head);
        Post.setJoint(Tr, std::move(Joint));
        std::optional<Heap> Mine = Heap::join(
            Pre.self(Pv).getHeap(), Heap::singleton(Head, Cell));
        Post.setSelf(Pv, PCMVal::ofHeap(std::move(*Mine)));
        // BUG: no history entry appended.
        return std::vector<ActOutcome>{{Cell.first(), std::move(Post)}};
      });
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R =
      explore(Prog::act(BadPop, {}), treiberState(Case, {5}, 0, 0), Opts);
  EXPECT_FALSE(R.Safe);
  EXPECT_NE(R.FailureNote.find("coherence"), std::string::npos);
}

TEST(SoundnessTest, BadPopNotCoveredByAnyTransition) {
  // The same bug is also caught statically by the action-correspondence
  // obligation: no Treiber transition covers a pop without its entry.
  TreiberCase Case = makeTreiberCase(Pv, Sec, 0);
  Ptr Snt = Case.Sentinel;
  Label Tr = Case.Tr;
  ActionRef BadPop = makeAction(
      "bad_pop", Case.C, 0,
      [Snt, Tr](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        Ptr Head = Pre.joint(Tr).lookup(Snt).getPtr();
        if (Head.isNull())
          return std::nullopt;
        const Val &Cell = Pre.joint(Tr).lookup(Head);
        View Post = Pre;
        Heap Joint = Pre.joint(Tr);
        Joint.update(Snt, Cell.second());
        Joint.remove(Head);
        Post.setJoint(Tr, std::move(Joint));
        std::optional<Heap> Mine = Heap::join(
            Pre.self(Pv).getHeap(), Heap::singleton(Head, Cell));
        Post.setSelf(Pv, PCMVal::ofHeap(std::move(*Mine)));
        return std::vector<ActOutcome>{{Cell.first(), std::move(Post)}};
      });
  std::vector<View> Samples = treiberSampleViews(Case);
  MetaReport R = checkActionCorrespondence(*BadPop, Samples, {{}});
  EXPECT_FALSE(R.Passed);
}

TEST(SoundnessTest, ForgettingContributionBumpIsUnsafe) {
  // A CG-increment client that increments the cell but forgets to bump
  // its own contribution: the release invariant cannot be re-established
  // and the unlock action is unsafe — precisely the auxiliary-state
  // bookkeeping the paper's approach enforces.
  LockProtocol P =
      makeCasLock(Pv, Sec, counterResourceModel(Sec, /*EnvCap=*/0));
  ActionRef ForgetfulUnlock = P.MakeUnlock(
      "unlock_forgetful", 0,
      [P](const View &S,
          const std::vector<Val> &) -> std::optional<std::pair<Heap, PCMVal>> {
        const Val *Cell =
            S.self(P.Pv).getHeap().tryLookup(counterResourceCell());
        if (!Cell)
          return std::nullopt;
        // BUG: releases the incremented cell with the OLD contribution.
        return std::make_pair(
            Heap::singleton(counterResourceCell(), *Cell),
            P.ClientSelf(S));
      });
  DefTable Defs;
  defineLockLoop(Defs, "lock", P.TryLock);
  ActionRef Read = makePrivRead(P.C, P.Pv);
  ActionRef Write = makePrivWrite(P.C, P.Pv);
  ExprRef Cell = Expr::litPtr(counterResourceCell());
  ProgRef Main = Prog::seq(
      Prog::call("lock", {}),
      Prog::bind(Prog::act(Read, {Cell}), "v",
                 Prog::seq(Prog::act(Write,
                                     {Cell, Expr::add(Expr::var("v"),
                                                      Expr::litInt(1))}),
                           Prog::act(ForgetfulUnlock, {}))));

  GlobalState GS;
  GS.addLabel(P.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              false);
  GS.addLabel(P.Lk, PCMType::pairOf(PCMType::mutex(), PCMType::nat()),
              P.InitialJoint(Heap::singleton(counterResourceCell(),
                                             Val::ofInt(0))),
              PCMVal::makePair(PCMVal::mutexFree(), PCMVal::ofNat(0)),
              false);
  EngineOptions Opts;
  Opts.Ambient = P.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Defs;
  RunResult R = explore(Main, GS, Opts);
  EXPECT_FALSE(R.Safe);
  EXPECT_NE(R.FailureNote.find("unlock_forgetful"), std::string::npos);
}

TEST(SoundnessTest, SelfAttributingCombinerRejected) {
  // A combiner that appends the executed operation to ITS OWN history
  // instead of parking it in the requester's slot: no FlatCombine
  // transition covers such a step (helping attribution is part of the
  // protocol, not a convention).
  FlatCombinerCase Case = makeFlatCombinerCase(Pv, /*EnvHistCap=*/0);
  Label Fc = Case.Fc;
  Ptr StkP = Case.StackCell;
  ActionRef SelfishCombine = makeAction(
      "selfish_combine", Case.C, 1,
      [Fc, StkP](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr() || !Pre.self(Fc).first().isOwn())
          return std::nullopt;
        const Val *Slot = Pre.joint(Fc).tryLookup(Args[0].getPtr());
        if (!Slot || !Slot->isPair() || !Slot->first().isInt())
          return std::nullopt;
        // Execute the request...
        Val Before = Pre.joint(Fc).lookup(StkP);
        Val After = Val::pair(Slot->second(), Before);
        View Post = Pre;
        Heap Joint = Pre.joint(Fc);
        Joint.update(StkP, After);
        Joint.update(Args[0].getPtr(), Val::unit()); // ...clear the slot
        Post.setJoint(Fc, std::move(Joint));
        // BUG: ...and claim the credit.
        History Mine = Pre.self(Fc).second().second().getHist();
        Mine.add(1, HistEntry{Before, After});
        Post.setSelf(
            Fc, PCMVal::makePair(
                    Pre.self(Fc).first(),
                    PCMVal::makePair(Pre.self(Fc).second().first(),
                                     PCMVal::ofHist(std::move(Mine)))));
        return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
      });

  // A sample where the env published a request and I hold the lock.
  GlobalState GS = flatCombinerState(Case, 1);
  Heap Joint = GS.joint(Fc);
  Joint.update(Case.LockCell, Val::ofBool(true));
  Joint.update(Case.Slot2, Val::pair(Val::ofInt(FcPush), Val::ofInt(3)));
  GS.setJoint(Fc, std::move(Joint));
  GS.setSelf(Fc, rootThread(),
             PCMVal::makePair(
                 PCMVal::mutexOwn(),
                 PCMVal::makePair(PCMVal::singletonPtr(Case.Slot1),
                                  PCMVal::ofHist(History()))));
  View Sample = GS.viewFor(rootThread());

  MetaReport R = checkActionCorrespondence(
      *SelfishCombine, {Sample}, {{Val::ofPtr(Case.Slot2)}});
  EXPECT_FALSE(R.Passed);
}

TEST(SoundnessTest, RacyNonAtomicIncrementLosesUpdates) {
  // The classic data race, caught as a functional failure: increment
  // implemented as unsynchronized read-then-CAS-free-write (modeled by
  // two separate actions with no protocol) drops updates under
  // interleaving; the parallel-increment postcondition fails.
  auto Coh = [](const View &S) {
    return S.hasLabel(Sec) && S.joint(Sec).contains(Ptr(1));
  };
  auto C = makeConcurroid("RacyCell",
                          {OwnedLabel{Sec, "rc", PCMType::nat()}}, Coh);
  // A write-anything transition so the racy write corresponds.
  C->addTransition(Transition(
      "scribble", TransitionKind::Internal, nullptr,
      [](const View &Pre, const View &Post) {
        for (Label L : Pre.labels())
          if (L != Sec && !(Pre.slice(L) == Post.slice(L)))
            return false;
        return Pre.other(Sec) == Post.other(Sec);
      },
      /*EnvEnabled=*/false));
  ConcurroidRef CC = C;

  ActionRef RacyRead = makeAction(
      "racy_read", CC, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        return std::vector<ActOutcome>{
            {Pre.joint(Sec).lookup(Ptr(1)), Pre}};
      });
  ActionRef RacyWrite = makeAction(
      "racy_write", CC, 1,
      [](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        View Post = Pre;
        Heap Joint = Pre.joint(Sec);
        Joint.update(Ptr(1), Args[0]);
        Post.setJoint(Sec, std::move(Joint));
        return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
      });

  DefTable Defs;
  Defs.define("racy_incr",
              FuncDef{{},
                      Prog::bind(Prog::act(RacyRead, {}), "v",
                                 Prog::act(RacyWrite,
                                           {Expr::add(Expr::var("v"),
                                                      Expr::litInt(1))}))});
  Spec S;
  S.Name = "racy_parallel_incr";
  S.C = CC;
  S.Pre = assertTrue();
  S.PostName = "the counter reads 2";
  S.Post = [](const Val &, const View &, const View &F) {
    return F.joint(Sec).lookup(Ptr(1)) == Val::ofInt(2);
  };
  GlobalState GS;
  GS.addLabel(Sec, PCMType::nat(),
              Heap::singleton(Ptr(1), Val::ofInt(0)), PCMVal::ofNat(0),
              false);
  EngineOptions Opts;
  Opts.Ambient = CC;
  Opts.EnvInterference = false;
  Opts.Defs = &Defs;
  VerifyResult R = verifyTriple(
      Prog::par(Prog::call("racy_incr", {}), Prog::call("racy_incr", {})),
      S, {VerifyInstance{GS, {}}}, Opts);
  // The exhaustive exploration finds the lost-update interleaving.
  EXPECT_FALSE(R.Holds);
}
