//===- tests/symmetry_test.cpp - Symmetry-reduction tests ------------------===//
//
// Part of fcsl-cpp. Exercises the orbit-canonicalization layer of
// DESIGN.md §11: the thread/pointer renaming primitives it is built on,
// strict state-space reduction on programs with interchangeable sibling
// threads (including a nested par tree whose orbits have up to 2^3
// members), stability of the canonical space across job counts and shard
// counts, the `--symmetry=check` cross-validation harness over the
// Table 1 sessions, and composition with partial-order reduction and
// multi-process sharding. Part of the TSan stage of scripts/verify.sh.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Entangle.h"
#include "concurroid/Priv.h"
#include "dist/Coordinator.h"
#include "prog/Engine.h"
#include "structures/Suite.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label Pv = 1;
constexpr Label Ct = 2;
const Ptr Cell = Ptr(1);

/// The toy counter world of engine_test: joint cell &1 == sum of the
/// per-thread nat contributions. Closed world (no env transition), which
/// keeps the interleaving spaces small and fully symmetric.
struct CounterWorld {
  ConcurroidRef C;
  ActionRef Incr; ///< () -> old value; bumps cell and self.
  ActionRef Read; ///< () -> value.
  DefTable Defs;
};

CounterWorld makeCounterWorld() {
  auto Coh = [](const View &S) {
    if (!S.hasLabel(Ct))
      return false;
    const Val *V = S.joint(Ct).tryLookup(Cell);
    if (!V || !V->isInt())
      return false;
    return V->getInt() == static_cast<int64_t>(S.self(Ct).getNat() +
                                               S.other(Ct).getNat());
  };
  auto C =
      makeConcurroid("Counter", {OwnedLabel{Ct, "ct", PCMType::nat()}}, Coh);
  C->addTransition(Transition(
      "bump", TransitionKind::Internal,
      [](const View &) -> std::vector<View> { return {}; },
      [](const View &Pre, const View &Post) {
        if (!Pre.hasLabel(Ct) || !Post.hasLabel(Ct))
          return false;
        for (Label L : Pre.labels())
          if (L != Ct && !(Pre.slice(L) == Post.slice(L)))
            return false;
        return Post.joint(Ct).lookup(Cell).getInt() ==
                   Pre.joint(Ct).lookup(Cell).getInt() + 1 &&
               Post.self(Ct).getNat() == Pre.self(Ct).getNat() + 1 &&
               Pre.other(Ct) == Post.other(Ct);
      }));

  CounterWorld World;
  World.C = entangle(makePriv(Pv), C);

  World.Incr = makeAction(
      "incr", World.C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *V = Pre.joint(Ct).tryLookup(Cell);
        if (!V)
          return std::nullopt;
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(Cell, Val::ofInt(V->getInt() + 1));
        Post.setJoint(Ct, std::move(Joint));
        Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return std::vector<ActOutcome>{{*V, std::move(Post)}};
      });

  World.Read = makeAction(
      "read", World.C, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *V = Pre.joint(Ct).tryLookup(Cell);
        if (!V)
          return std::nullopt;
        return std::vector<ActOutcome>{{*V, Pre}};
      });
  return World;
}

GlobalState counterState(int64_t Initial = 0) {
  GlobalState GS;
  GS.addLabel(Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()), false);
  GS.addLabel(Ct, PCMType::nat(),
              Heap::singleton(Cell, Val::ofInt(Initial)), PCMVal::ofNat(0),
              false);
  return GS;
}

EngineOptions optsFor(const CounterWorld &W) {
  EngineOptions Opts;
  Opts.Ambient = W.C;
  Opts.EnvInterference = false;
  Opts.Defs = &W.Defs;
  Opts.Jobs = 1;
  return Opts;
}

/// par(incr, incr): one pair of interchangeable siblings (orbit size 2).
ProgRef symmetricPair(const CounterWorld &W) {
  // Sharing the leaf node is not required — two separate `act` nodes are
  // recognized as equivalent structurally.
  return Prog::par(Prog::act(W.Incr, {}), Prog::act(W.Incr, {}));
}

/// par(D, D) where D = par(incr, incr): a nested symmetric par tree with
/// three interchangeable sibling pairs, so orbits reach 2^3 = 8 members
/// (the k!-class instance of the acceptance criteria). The subtrees are
/// the *same node*: par subtrees are opaque to structural comparison
/// (their split closures cannot be compared), so sharing is how a
/// symmetric nested tree is expressed.
ProgRef symmetricQuad(const CounterWorld &W) {
  ProgRef Leaf = Prog::act(W.Incr, {});
  ProgRef Inner = Prog::par(Leaf, Leaf);
  return Prog::par(Inner, Inner);
}

bool sameTerminals(const RunResult &A, const RunResult &B) {
  if (A.Terminals.size() != B.Terminals.size())
    return false;
  for (size_t I = 0; I != A.Terminals.size(); ++I)
    if (A.Terminals[I] < B.Terminals[I] || B.Terminals[I] < A.Terminals[I])
      return false;
  return true;
}

/// Restores the process-default symmetry mode on scope exit.
struct SymModeGuard {
  ~SymModeGuard() { setDefaultSymmetryMode(SymMode::Off); }
};

} // namespace

//===----------------------------------------------------------------------===//
// The renaming primitives the canonicalizer is built on.
//===----------------------------------------------------------------------===//

TEST(RenameTest, RenameThreadsSwapsContributions) {
  GlobalState GS = counterState(3);
  GS.setSelf(Ct, ThreadId(2), PCMVal::ofNat(1));
  GS.setSelf(Ct, ThreadId(3), PCMVal::ofNat(2));
  GS.renameThreads({{ThreadId(2), ThreadId(3)}, {ThreadId(3), ThreadId(2)}});
  EXPECT_EQ(GS.viewFor(ThreadId(2)).self(Ct).getNat(), 2u);
  EXPECT_EQ(GS.viewFor(ThreadId(3)).self(Ct).getNat(), 1u);
  // Threads absent from the map keep their contribution; the swap is an
  // involution.
  GS.renameThreads({{ThreadId(2), ThreadId(3)}, {ThreadId(3), ThreadId(2)}});
  EXPECT_EQ(GS.viewFor(ThreadId(2)).self(Ct).getNat(), 1u);
  EXPECT_EQ(GS.viewFor(ThreadId(3)).self(Ct).getNat(), 2u);
  // The joint heap and the subjective *sum* are untouched by renaming.
  EXPECT_EQ(GS.viewFor(ThreadId(2)).joint(Ct).lookup(Cell).getInt(), 3);
  EXPECT_EQ(GS.viewFor(ThreadId(2)).other(Ct).getNat(), 2u);
}

TEST(RenameTest, RenamePtrsRewritesValuesAndHeaps) {
  Val Nested = Val::pair(Val::ofPtr(Ptr(1)),
                         Val::pair(Val::ofInt(7), Val::ofPtr(Ptr(2))));
  Val Renamed = Nested.renamePtrs({{Ptr(1), Ptr(5)}});
  EXPECT_EQ(Renamed.first().getPtr(), Ptr(5));
  EXPECT_EQ(Renamed.second().second().getPtr(), Ptr(2));

  GlobalState GS = counterState(0);
  GS.renamePtrs({{Cell, Ptr(9)}});
  EXPECT_FALSE(GS.viewFor(rootThread()).joint(Ct).contains(Cell));
  EXPECT_EQ(GS.viewFor(rootThread()).joint(Ct).lookup(Ptr(9)).getInt(), 0);
}

//===----------------------------------------------------------------------===//
// Strict reduction with bit-identical observable behavior.
//===----------------------------------------------------------------------===//

TEST(SymmetryTest, SiblingPairCollapsesToOneOrbitPerLevel) {
  CounterWorld W = makeCounterWorld();
  EngineOptions Opts = optsFor(W);
  ProgRef Main = symmetricPair(W);
  Opts.Symmetry = SymMode::Off;
  RunResult Full = explore(Main, counterState(), Opts);
  Opts.Symmetry = SymMode::On;
  RunResult Canon = explore(Main, counterState(), Opts);
  ASSERT_TRUE(Full.Safe);
  ASSERT_TRUE(Canon.Safe);
  EXPECT_EQ(Full.Exhausted, Canon.Exhausted);
  EXPECT_TRUE(sameTerminals(Full, Canon));
  EXPECT_TRUE(Canon.SymReduced);
  EXPECT_FALSE(Full.SymReduced);
  EXPECT_LT(Canon.ConfigsExplored, Full.ConfigsExplored)
      << Canon.ConfigsExplored << " canonical vs " << Full.ConfigsExplored
      << " full configurations";
}

TEST(SymmetryTest, NestedParTreeCollapsesFactorialOrbits) {
  // The k!-class instance: three interchangeable sibling pairs; orbits of
  // the mid-exploration configurations reach 8 members.
  CounterWorld W = makeCounterWorld();
  EngineOptions Opts = optsFor(W);
  ProgRef Main = symmetricQuad(W);
  Opts.Symmetry = SymMode::Off;
  RunResult Full = explore(Main, counterState(), Opts);
  Opts.Symmetry = SymMode::On;
  RunResult Canon = explore(Main, counterState(), Opts);
  ASSERT_TRUE(Full.Safe);
  ASSERT_TRUE(Canon.Safe);
  EXPECT_TRUE(sameTerminals(Full, Canon));
  // The orbit collapse must be substantial, not incidental: at least a
  // quarter of the full space is folded away.
  EXPECT_LE(4 * Canon.ConfigsExplored, 3 * Full.ConfigsExplored)
      << Canon.ConfigsExplored << " canonical vs " << Full.ConfigsExplored
      << " full configurations";
  // The canonicalizer actually rewrote configurations (orbit-cache proxy).
  SymmetryStats Stats = symmetryStats();
  EXPECT_GT(Stats.Lookups, 0u);
  EXPECT_GT(Stats.Changed, 0u);
}

TEST(SymmetryTest, AsymmetricSiblingsAreLeftAlone) {
  // par(incr, read): the siblings run different programs, so no swap is
  // available and the canonical space equals the full space.
  CounterWorld W = makeCounterWorld();
  EngineOptions Opts = optsFor(W);
  ProgRef Main =
      Prog::par(Prog::act(W.Incr, {}), Prog::act(W.Read, {}));
  Opts.Symmetry = SymMode::Off;
  RunResult Full = explore(Main, counterState(), Opts);
  Opts.Symmetry = SymMode::On;
  RunResult Canon = explore(Main, counterState(), Opts);
  ASSERT_TRUE(Full.Safe);
  ASSERT_TRUE(Canon.Safe);
  EXPECT_TRUE(sameTerminals(Full, Canon));
  EXPECT_EQ(Full.ConfigsExplored, Canon.ConfigsExplored);
}

//===----------------------------------------------------------------------===//
// Canonical representatives are deterministic: idempotent across repeated
// runs and independent of discovery order (job count, shard count).
//===----------------------------------------------------------------------===//

TEST(SymmetryTest, CanonicalSpaceIsStableAcrossJobCounts) {
  CounterWorld W = makeCounterWorld();
  EngineOptions Opts = optsFor(W);
  Opts.Symmetry = SymMode::On;
  ProgRef Main = symmetricQuad(W);
  RunResult Serial = explore(Main, counterState(), Opts);
  ASSERT_TRUE(Serial.complete());
  for (unsigned Jobs : {1u, 2u, 8u}) {
    Opts.Jobs = Jobs;
    RunResult Par = explore(Main, counterState(), Opts);
    EXPECT_EQ(Serial.Safe, Par.Safe) << Jobs << " jobs";
    EXPECT_TRUE(sameTerminals(Serial, Par)) << Jobs << " jobs";
    // Discovery order differs across workers, yet every orbit resolves to
    // the same representative: the canonical config count is identical.
    EXPECT_EQ(Serial.ConfigsExplored, Par.ConfigsExplored) << Jobs << " jobs";
    EXPECT_EQ(Serial.ActionSteps, Par.ActionSteps) << Jobs << " jobs";
  }
}

TEST(SymmetryTest, CanonicalSpaceIsStableAcrossShardCounts) {
  // Canonical fingerprints drive shard ownership, so a whole orbit lands
  // on one shard and the fleet's union equals the serial canonical space.
  CounterWorld W = makeCounterWorld();
  EngineOptions Opts = optsFor(W);
  Opts.Symmetry = SymMode::On;
  ProgRef Main = symmetricQuad(W);
  RunResult Serial = explore(Main, counterState(), Opts);
  ASSERT_TRUE(Serial.complete());
  for (unsigned Shards : {2u, 4u}) {
    RunResult Fleet =
        dist::distributedExplore(Main, counterState(), Opts, {}, Shards);
    EXPECT_EQ(Serial.Safe, Fleet.Safe) << Shards << " shards";
    EXPECT_TRUE(sameTerminals(Serial, Fleet)) << Shards << " shards";
    EXPECT_EQ(Serial.ConfigsExplored, Fleet.ConfigsExplored)
        << Shards << " shards";
  }
}

TEST(SymmetryTest, RepeatedRunsAreBitIdentical) {
  // Canonicalization is a pure function of the configuration: repeated
  // explorations agree exactly (idempotence at the state-space level).
  CounterWorld W = makeCounterWorld();
  EngineOptions Opts = optsFor(W);
  Opts.Symmetry = SymMode::On;
  ProgRef Main = symmetricQuad(W);
  RunResult A = explore(Main, counterState(), Opts);
  RunResult B = explore(Main, counterState(), Opts);
  EXPECT_EQ(A.Safe, B.Safe);
  EXPECT_EQ(A.ConfigsExplored, B.ConfigsExplored);
  EXPECT_EQ(A.ActionSteps, B.ActionSteps);
  EXPECT_TRUE(sameTerminals(A, B));
}

//===----------------------------------------------------------------------===//
// The check harness: canonical exploration cross-validated against the
// full one, exactly like --por=check.
//===----------------------------------------------------------------------===//

TEST(SymmetryCheckTest, CheckModeCrossValidates) {
  CounterWorld W = makeCounterWorld();
  EngineOptions Opts = optsFor(W);
  Opts.Symmetry = SymMode::Check;
  RunResult R = explore(symmetricQuad(W), counterState(), Opts);
  EXPECT_TRUE(R.Safe);
  EXPECT_TRUE(R.SymChecked);
  EXPECT_FALSE(R.SymMismatch);
  EXPECT_GT(R.SymConfigsFull, 0u);
  EXPECT_GT(R.SymConfigsCanonical, 0u);
  EXPECT_LT(R.SymConfigsCanonical, R.SymConfigsFull);
  // Check mode reports the *full* run (the ground truth).
  EXPECT_FALSE(R.SymReduced);
  EXPECT_EQ(R.ConfigsExplored, R.SymConfigsFull);
}

TEST(SymmetryCheckTest, DefaultModeFollowsProcessDefault) {
  SymModeGuard Guard;
  CounterWorld W = makeCounterWorld();
  EngineOptions Opts = optsFor(W);
  Opts.Symmetry = SymMode::Default;
  setDefaultSymmetryMode(SymMode::On);
  RunResult Canon = explore(symmetricPair(W), counterState(), Opts);
  setDefaultSymmetryMode(SymMode::Off);
  RunResult Full = explore(symmetricPair(W), counterState(), Opts);
  EXPECT_TRUE(Canon.SymReduced);
  EXPECT_FALSE(Full.SymReduced);
  EXPECT_TRUE(sameTerminals(Canon, Full));
}

TEST(SymmetryCheckTest, EveryTableOneSessionPassesUnderCheck) {
  // The acceptance gate: every Table 1 session discharges identically in
  // the canonical and the full space. Sessions run their engine calls
  // with SymMode::Default, so the process default routes them all
  // through the check harness.
  SymModeGuard Guard;
  setDefaultSymmetryMode(SymMode::Check);
  for (const CaseEntry &Case : allCaseStudies()) {
    SessionReport Report = Case.MakeSession().run();
    EXPECT_TRUE(Report.AllPassed) << Case.Name << ": "
                                  << (Report.Failures.empty()
                                          ? std::string("(no failure note)")
                                          : Report.Failures.front());
  }
}

//===----------------------------------------------------------------------===//
// Composition: symmetry × POR × sharding against the plain engine.
//===----------------------------------------------------------------------===//

TEST(SymmetryComposeTest, SymmetryPorAndShardsMatchThePlainEngine) {
  CounterWorld W = makeCounterWorld();
  ProgRef Main = symmetricQuad(W);
  EngineOptions Plain = optsFor(W);
  Plain.Symmetry = SymMode::Off;
  Plain.Por = PorMode::Off;
  RunResult Baseline = explore(Main, counterState(), Plain);
  ASSERT_TRUE(Baseline.Safe);

  EngineOptions Opts = optsFor(W);
  Opts.Symmetry = SymMode::On;
  Opts.Por = PorMode::On;
  RunResult Local = explore(Main, counterState(), Opts);
  EXPECT_TRUE(Local.Safe);
  EXPECT_EQ(Baseline.Exhausted, Local.Exhausted);
  EXPECT_TRUE(sameTerminals(Baseline, Local));
  EXPECT_LE(Local.ConfigsExplored, Baseline.ConfigsExplored);

  for (unsigned Shards : {2u}) {
    RunResult Fleet =
        dist::distributedExplore(Main, counterState(), Opts, {}, Shards);
    EXPECT_TRUE(Fleet.Safe);
    EXPECT_TRUE(sameTerminals(Baseline, Fleet)) << Shards << " shards";
    EXPECT_EQ(Local.ConfigsExplored, Fleet.ConfigsExplored)
        << Shards << " shards";
  }
}

TEST(SymmetryComposeTest, CheckComposesWithPorOnTableOneStructure) {
  // Both reductions in check mode at once on a real structure: the POR
  // harness resolves first and each of its sub-runs goes through the
  // symmetry harness.
  SymModeGuard Guard;
  setDefaultSymmetryMode(SymMode::Check);
  setDefaultPorMode(PorMode::Check);
  SessionReport Report;
  for (const CaseEntry &Case : allCaseStudies())
    if (Case.Name == "CG increment")
      Report = Case.MakeSession().run();
  setDefaultPorMode(PorMode::Off);
  EXPECT_EQ(Report.Program, "CG increment");
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? std::string("(no failure note)")
                                  : Report.Failures.front());
}
