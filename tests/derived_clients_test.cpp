//===- tests/derived_clients_test.cpp - Seq/FC-stack, Prod/Cons tests ------===//
//
// Part of fcsl-cpp. The derived clients of Figure 5's upper layer.
//
//===----------------------------------------------------------------------===//

#include "structures/FcStack.h"
#include "structures/ProdCons.h"
#include "structures/SeqStack.h"

#include <gtest/gtest.h>

using namespace fcsl;

TEST(SeqStackTest, SessionPasses) {
  SessionReport Report = makeSeqStackSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
  // Derived client: Main obligations only (Table 1's "-" cells).
  EXPECT_EQ(Report.PerCategory[size_t(ObCategory::Conc)].Obligations, 0u);
  EXPECT_GT(Report.PerCategory[size_t(ObCategory::Main)].Obligations, 0u);
}

TEST(FcStackTest, SessionPasses) {
  SessionReport Report = makeFcStackSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
}

TEST(ProdConsTest, SessionPasses) {
  SessionReport Report = makeProdConsSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
}
