//===- tests/cache_test.cpp - Obligation-cache tests -----------------------===//
//
// Part of fcsl-cpp.
//
// Pins the content-addressed obligation pipeline (cache/Store.h, DESIGN.md
// §13): obligation keys are process-stable (computed in a freshly exec'd
// process, not a forked copy of this one), a warm rerun serves every keyed
// unit from the store with bit-identical verdicts and counts, editing a
// declared input invalidates exactly the affected unit, a verdict recorded
// under one engine-flag fingerprint never answers a query under another,
// truncated or corrupt logs degrade to misses (never wrong verdicts), and
// --cache=check re-discharges hits and fails loudly on divergence —
// exercised over the full Table-1 suite.
//
//===----------------------------------------------------------------------===//

#include "structures/StackIface.h"
#include "structures/Suite.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace fcsl;

namespace {

/// A scratch cache directory + process cache-mode scope. Every test runs
/// against its own store and restores the process defaults on exit.
class CacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/fcsl-cache-test-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Dir = Template;
    cache::setCacheDir(Dir);
    cache::resetActiveStore();
  }

  void TearDown() override {
    cache::setDefaultCacheMode(cache::CacheMode::Off);
    cache::setCacheDir("");
    cache::resetActiveStore();
    std::remove(storePath().c_str());
    ::rmdir(Dir.c_str());
  }

  void setMode(cache::CacheMode M) {
    cache::setDefaultCacheMode(M);
    cache::resetActiveStore();
  }

  std::string storePath() const { return Dir + "/obligations.fcslcache"; }

  uint64_t storeSize() const {
    struct stat St;
    return ::stat(storePath().c_str(), &St) == 0
               ? static_cast<uint64_t>(St.st_size)
               : 0;
  }

  std::string Dir;
};

/// A deterministic toy session: one keyed Libs lemma whose declared input
/// is \p InputFp, reporting \p Checks elementary checks.
VerificationSession toySession(uint64_t InputFp, uint64_t Checks,
                               bool Passes = true) {
  VerificationSession S("Toy");
  S.addObligation(ObCategory::Libs, "toy_lemma",
                  ObligationInputs(ObKind::Check).mix(InputFp).rev(1),
                  [Checks, Passes] {
                    ObligationResult O;
                    O.Passed = Passes;
                    O.Checks = Checks;
                    O.Counters.Configs = Checks * 2;
                    if (!Passes)
                      O.Note = "toy failure";
                    return O;
                  });
  return S;
}

/// Renders every Table-1 proof unit's content fingerprint (plus the
/// engine-flag fingerprint) as one line per unit — the child process and
/// the parent must produce byte-identical dumps.
std::string dumpAllKeys() {
  std::ostringstream Out;
  std::vector<CaseEntry> Cases = allCaseStudies();
  Cases.push_back(CaseEntry{"Abstract stack", makeStackIfaceSession});
  for (const CaseEntry &Case : Cases) {
    VerificationSession S = Case.MakeSession();
    for (const ProofUnit &U : S.units())
      Out << Case.Name << "/" << U.Name << " " << U.ContentFp << "\n";
  }
  Out << "engine-flags " << engineFlagsFingerprint() << "\n";
  return Out.str();
}

} // namespace

// Re-executes this binary (exec, not fork: fresh address space, fresh
// intern arenas, fresh ASLR) and compares its key dump byte for byte.
// Fingerprints must derive from canonical content only — any pointer or
// registration-order dependence shows up as a mismatch.
TEST(CacheKeyTest, KeysAreProcessStable) {
  if (const char *DumpPath = std::getenv("FCSL_CACHE_TEST_DUMP")) {
    std::ofstream Out(DumpPath);
    ASSERT_TRUE(Out.good());
    Out << dumpAllKeys();
    return;
  }

  char Template[] = "/tmp/fcsl-keys-XXXXXX";
  int Fd = ::mkstemp(Template);
  ASSERT_GE(Fd, 0);
  ::close(Fd);
  std::string Path = Template;

  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    ::setenv("FCSL_CACHE_TEST_DUMP", Path.c_str(), 1);
    const char *Exe = "/proc/self/exe";
    execl(Exe, "cache_test",
          "--gtest_filter=CacheKeyTest.KeysAreProcessStable",
          "--gtest_brief=1", static_cast<char *>(nullptr));
    std::_Exit(127); // exec failed.
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
      << "child key-dump process failed";

  std::ifstream In(Path);
  std::stringstream ChildDump;
  ChildDump << In.rdbuf();
  std::remove(Path.c_str());

  std::string Mine = dumpAllKeys();
  EXPECT_FALSE(Mine.empty());
  EXPECT_EQ(ChildDump.str(), Mine);
}

TEST_F(CacheTest, WarmRunReplaysBitIdentically) {
  setMode(cache::CacheMode::Rw);
  VerificationSession S = toySession(0x1234, 7);

  SessionReport Cold = S.run();
  EXPECT_TRUE(Cold.AllPassed);
  EXPECT_EQ(Cold.Cache.Hits, 0u);
  EXPECT_EQ(Cold.Cache.Misses, 1u);
  EXPECT_EQ(Cold.Cache.Stores, 1u);
  EXPECT_EQ(Cold.Cache.Unkeyed, 0u);

  SessionReport Warm = S.run();
  EXPECT_TRUE(Warm.AllPassed);
  EXPECT_EQ(Warm.Cache.Hits, 1u);
  EXPECT_EQ(Warm.Cache.Misses, 0u);
  EXPECT_EQ(Warm.Cache.Stores, 0u);
  EXPECT_EQ(Warm.Cache.ReplayedChecks, 7u);
  EXPECT_EQ(Warm.Cache.ReplayedConfigs, 14u);
  for (size_t C = 0; C != 5; ++C) {
    EXPECT_EQ(Warm.PerCategory[C].Obligations, Cold.PerCategory[C].Obligations);
    EXPECT_EQ(Warm.PerCategory[C].Checks, Cold.PerCategory[C].Checks);
  }

  // Failed verdicts replay too — the cache must not launder a failure.
  VerificationSession Bad = toySession(0x9999, 3, /*Passes=*/false);
  SessionReport BadCold = Bad.run();
  EXPECT_FALSE(BadCold.AllPassed);
  SessionReport BadWarm = Bad.run();
  EXPECT_FALSE(BadWarm.AllPassed);
  EXPECT_EQ(BadWarm.Cache.Hits, 1u);
  ASSERT_EQ(BadWarm.Failures.size(), 1u);
  EXPECT_NE(BadWarm.Failures[0].find("toy failure"), std::string::npos);
}

TEST_F(CacheTest, EditingADeclaredInputInvalidates) {
  setMode(cache::CacheMode::Rw);
  toySession(0xaaaa, 5).run();

  // Same declared input: hit. Different input (an "edited program"): miss,
  // and NOT stale-by-flag — the content itself changed.
  SessionReport Same = toySession(0xaaaa, 5).run();
  EXPECT_EQ(Same.Cache.Hits, 1u);
  SessionReport Edited = toySession(0xbbbb, 5).run();
  EXPECT_EQ(Edited.Cache.Hits, 0u);
  EXPECT_EQ(Edited.Cache.Misses, 1u);
  EXPECT_EQ(Edited.Cache.StaleFlags, 0u);

  // A bumped site revision invalidates as well.
  VerificationSession Bumped("Toy");
  Bumped.addObligation(ObCategory::Libs, "toy_lemma",
                       ObligationInputs(ObKind::Check).mix(0xaaaa).rev(2),
                       [] { return ObligationResult{}; });
  SessionReport Rev = Bumped.run();
  EXPECT_EQ(Rev.Cache.Hits, 0u);
  EXPECT_EQ(Rev.Cache.Misses, 1u);
}

TEST_F(CacheTest, FlagFingerprintSeparatesVerdicts) {
  setMode(cache::CacheMode::Rw);
  ASSERT_EQ(defaultPorMode(), PorMode::Off);
  toySession(0xcccc, 9).run();

  // Same content under --por=dynamic: a miss, reported stale-by-flag. The
  // por=off verdict must never answer the por=dynamic query.
  setDefaultPorMode(PorMode::Dynamic);
  SessionReport Dyn = toySession(0xcccc, 9).run();
  EXPECT_EQ(Dyn.Cache.Hits, 0u);
  EXPECT_EQ(Dyn.Cache.Misses, 1u);
  EXPECT_EQ(Dyn.Cache.StaleFlags, 1u);
  EXPECT_EQ(Dyn.Cache.Stores, 1u);

  // Both flag variants now resident: each mode hits its own record.
  SessionReport DynWarm = toySession(0xcccc, 9).run();
  EXPECT_EQ(DynWarm.Cache.Hits, 1u);
  setDefaultPorMode(PorMode::Off);
  SessionReport OffWarm = toySession(0xcccc, 9).run();
  EXPECT_EQ(OffWarm.Cache.Hits, 1u);
}

TEST_F(CacheTest, RecordsPersistAcrossReopen) {
  setMode(cache::CacheMode::Rw);
  toySession(0xdddd, 4).run();
  ASSERT_GT(storeSize(), 0u);

  // Reopen from disk (fresh Store object, same log).
  cache::resetActiveStore();
  SessionReport Warm = toySession(0xdddd, 4).run();
  EXPECT_EQ(Warm.Cache.Hits, 1u);

  // Read-only mode serves the same hit and never grows the log.
  uint64_t Size = storeSize();
  setMode(cache::CacheMode::Ro);
  SessionReport Ro = toySession(0xdddd, 4).run();
  EXPECT_EQ(Ro.Cache.Hits, 1u);
  SessionReport RoMiss = toySession(0xeeee, 4).run();
  EXPECT_EQ(RoMiss.Cache.Misses, 1u);
  EXPECT_EQ(RoMiss.Cache.Stores, 0u);
  EXPECT_EQ(storeSize(), Size);
}

TEST_F(CacheTest, TruncatedAndCorruptLogsDegradeToMisses) {
  setMode(cache::CacheMode::Rw);
  toySession(0x1111, 2).run();
  toySession(0x2222, 2).run();
  cache::resetActiveStore();
  uint64_t Full = storeSize();
  ASSERT_GT(Full, 8u);

  // Torn tail: drop the last 3 bytes. The first record still loads; the
  // torn one is dropped (a miss, re-discharged and re-stored).
  ASSERT_EQ(::truncate(storePath().c_str(), Full - 3), 0);
  cache::resetActiveStore();
  SessionReport First = toySession(0x1111, 2).run();
  SessionReport Second = toySession(0x2222, 2).run();
  EXPECT_EQ(First.Cache.Hits + Second.Cache.Hits, 1u);
  EXPECT_EQ(First.Cache.Misses + Second.Cache.Misses, 1u);
  EXPECT_TRUE(First.AllPassed && Second.AllPassed);

  // Flip a byte inside the header: the whole log is foreign — every query
  // misses, the session still passes, and the rewrite leaves a clean log.
  {
    std::fstream F(storePath(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.good());
    F.seekp(1);
    F.put(static_cast<char>(0xff));
  }
  cache::resetActiveStore();
  SessionReport Corrupt = toySession(0x1111, 2).run();
  EXPECT_EQ(Corrupt.Cache.Hits, 0u);
  EXPECT_EQ(Corrupt.Cache.Misses, 1u);
  EXPECT_TRUE(Corrupt.AllPassed);
  cache::resetActiveStore();
  SessionReport Healed = toySession(0x1111, 2).run();
  EXPECT_EQ(Healed.Cache.Hits, 1u);
}

TEST_F(CacheTest, CheckModeFailsLoudlyOnDivergence) {
  // Plant a tampered record under the toy unit's key, then run in check
  // mode: the re-discharge contradicts the store and the session fails.
  VerificationSession S = toySession(0x5a5a, 6);
  ASSERT_EQ(S.units().size(), 1u);
  cache::ObligationKey Key = S.units()[0].key(engineFlagsFingerprint());

  {
    cache::Store Planted;
    ASSERT_TRUE(Planted.open(storePath(), /*Writable=*/true));
    cache::CacheRecord R;
    R.Key = Key;
    R.Passed = true;
    R.Checks = 999; // The fresh discharge reports 6.
    Planted.append(R);
  }

  setMode(cache::CacheMode::Check);
  SessionReport Report = S.run();
  EXPECT_FALSE(Report.AllPassed);
  EXPECT_EQ(Report.Cache.CheckRuns, 1u);
  EXPECT_EQ(Report.Cache.Divergences, 1u);
  ASSERT_EQ(Report.Failures.size(), 1u);
  EXPECT_NE(Report.Failures[0].find("cache-check divergence"),
            std::string::npos);
}

TEST_F(CacheTest, Table1WarmRunIsAllHitsAndCheckClean) {
  std::vector<CaseEntry> Cases = allCaseStudies();
  ASSERT_EQ(Cases.size(), 11u);

  // Cold run: populate the store; every obligation is keyed.
  setMode(cache::CacheMode::Rw);
  std::vector<SessionReport> Cold;
  for (const CaseEntry &Case : Cases) {
    Cold.push_back(Case.MakeSession().run());
    const SessionReport &R = Cold.back();
    EXPECT_TRUE(R.AllPassed) << Case.Name;
    EXPECT_EQ(R.Cache.Unkeyed, 0u) << Case.Name << " has unkeyed units";
    EXPECT_EQ(R.Cache.Hits, 0u) << Case.Name;
    EXPECT_EQ(R.Cache.Stores, R.totalObligations()) << Case.Name;
  }

  // Warm run: 100% hits, bit-identical verdicts and per-category counts.
  for (size_t I = 0; I != Cases.size(); ++I) {
    SessionReport Warm = Cases[I].MakeSession().run();
    EXPECT_TRUE(Warm.AllPassed) << Cases[I].Name;
    EXPECT_EQ(Warm.Cache.Hits, Warm.totalObligations()) << Cases[I].Name;
    EXPECT_EQ(Warm.Cache.Misses, 0u) << Cases[I].Name;
    for (size_t C = 0; C != 5; ++C) {
      EXPECT_EQ(Warm.PerCategory[C].Obligations,
                Cold[I].PerCategory[C].Obligations)
          << Cases[I].Name;
      EXPECT_EQ(Warm.PerCategory[C].Checks, Cold[I].PerCategory[C].Checks)
          << Cases[I].Name;
    }
  }

  // Check mode over the warm store: every hit re-discharged, zero
  // divergences — the cached corpus agrees with a fresh one.
  setMode(cache::CacheMode::Check);
  for (const CaseEntry &Case : Cases) {
    SessionReport Checked = Case.MakeSession().run();
    EXPECT_TRUE(Checked.AllPassed) << Case.Name;
    EXPECT_EQ(Checked.Cache.CheckRuns, Checked.totalObligations())
        << Case.Name;
    EXPECT_EQ(Checked.Cache.Divergences, 0u) << Case.Name;
  }
}

// Daemon-hardening regression (DESIGN.md §15): N threads hammer ONE log
// path through N distinct Store objects — the worst interleaving the
// per-object mutex cannot serialize. Every append must land whole
// (O_APPEND, single write per record, striped path lock); reopening the
// log afterwards must decode cleanly end to end and index every record.
TEST_F(CacheTest, ConcurrentAppendersNeverTearTheLog) {
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 200;

  // Seed a well-formed log (header + version) for the appenders to share.
  {
    cache::Store Seed;
    ASSERT_TRUE(Seed.open(storePath(), /*Writable=*/true));
  }

  std::vector<std::unique_ptr<cache::Store>> Stores;
  for (unsigned T = 0; T != Threads; ++T) {
    auto S = std::make_unique<cache::Store>();
    ASSERT_TRUE(S->open(storePath(), /*Writable=*/true));
    Stores.push_back(std::move(S));
  }

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([T, &Stores] {
      for (unsigned I = 0; I != PerThread; ++I) {
        cache::CacheRecord R;
        R.Key.Content = 1 + T * PerThread + I; // disjoint per thread.
        R.Key.Flags = 0x5eed;
        R.Passed = true;
        R.Checks = I;
        R.Counters.Configs = 2 * I;
        R.ElapsedUs = T;
        R.Note = "thread " + std::to_string(T);
        Stores[T]->append(R);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  Stores.clear(); // close every descriptor before reopening.

  // A fresh open must decode the whole log — open() rewrites a torn log,
  // shrinking it, so "every record indexed AND the size is unchanged by
  // reopening" pins that no append tore.
  uint64_t Written = storeSize();
  cache::Store Reopened;
  ASSERT_TRUE(Reopened.open(storePath(), /*Writable=*/true));
  EXPECT_EQ(Reopened.records(), size_t(Threads) * PerThread);
  EXPECT_EQ(storeSize(), Written) << "reopen rewrote a torn log";
  for (unsigned T = 0; T != Threads; ++T)
    for (unsigned I = 0; I != PerThread; ++I) {
      cache::ObligationKey K{1 + T * PerThread + I, 0x5eed};
      const cache::CacheRecord *R = Reopened.lookup(K);
      ASSERT_NE(R, nullptr);
      EXPECT_EQ(R->Checks, I);
      EXPECT_EQ(R->Note, "thread " + std::to_string(T));
    }
}
