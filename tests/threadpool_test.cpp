//===- tests/threadpool_test.cpp - Task pool tests -------------------------===//
//
// Part of fcsl-cpp. Exercises the support thread pool, the parallelFor
// fan-out, and the job-count resolution policy (explicit counts, process
// default, nested-region clamping). These tests are part of the TSan
// stage of scripts/verify.sh.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using namespace fcsl;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> Ran{0};
  ThreadPool Pool(4);
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  std::atomic<int> Ran{0};
  ThreadPool Pool(2);
  Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 1);
  Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.submit([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 32; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
  }
  EXPECT_EQ(Ran.load(), 32);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  parallelFor(N, 8, [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ParallelForTest, SerialFallbackRunsInline) {
  std::vector<size_t> Order;
  parallelFor(5, 1, [&Order](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroItemsIsANoop) {
  bool Ran = false;
  parallelFor(0, 8, [&Ran](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(JobPolicyTest, ExplicitCountPassesThrough) {
  EXPECT_EQ(resolveJobs(3), 3u);
  EXPECT_EQ(resolveJobs(1), 1u);
}

TEST(JobPolicyTest, HardwareJobsIsPositive) {
  EXPECT_GE(hardwareJobs(), 1u);
}

TEST(JobPolicyTest, DefaultJobsFollowsSetter) {
  setDefaultJobs(5);
  EXPECT_EQ(defaultJobs(), 5u);
  EXPECT_EQ(resolveJobs(0), 5u);
  setDefaultJobs(1);
  EXPECT_EQ(resolveJobs(0), 1u);
}

TEST(JobPolicyTest, EffectiveJobsFallsBackToSerial) {
  // Degenerate fan-outs run inline: nothing to parallelize, or the
  // caller asked for one worker.
  EXPECT_EQ(effectiveJobs(8, 0), 1u);
  EXPECT_EQ(effectiveJobs(8, 1), 1u);
  EXPECT_EQ(effectiveJobs(1, 100), 1u);
  // Too few items to amortize pool spin-up.
  EXPECT_EQ(effectiveJobs(8, 2), 1u);
  EXPECT_EQ(effectiveJobs(8, 3), 1u);
}

TEST(JobPolicyTest, EffectiveJobsClampsToItemsOnMultiCore) {
  if (hardwareJobs() == 1) {
    // Single-core host: parallel fan-out cannot pay for itself, the
    // policy goes serial regardless of the request.
    EXPECT_EQ(effectiveJobs(8, 100), 1u);
    EXPECT_EQ(effectiveJobs(2, 6), 1u);
  } else {
    EXPECT_EQ(effectiveJobs(8, 100), 8u);
    EXPECT_EQ(effectiveJobs(8, 5), 5u);
  }
}

TEST(JobPolicyTest, NestedRegionsClampDefaultToOne) {
  setDefaultJobs(4);
  EXPECT_FALSE(inParallelRegion());
  std::atomic<unsigned> NestedResolved{0};
  std::atomic<int> RegionsSeen{0};
  parallelFor(8, 4, [&](size_t) {
    if (inParallelRegion())
      RegionsSeen.fetch_add(1);
    NestedResolved.fetch_add(resolveJobs(0));
  });
  // Every worker-side invocation sees a parallel region and resolves the
  // default job count to 1 (explicit counts still pass through).
  EXPECT_EQ(RegionsSeen.load(), 8);
  EXPECT_EQ(NestedResolved.load(), 8u);
  EXPECT_FALSE(inParallelRegion());
  setDefaultJobs(1);
}
