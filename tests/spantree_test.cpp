//===- tests/spantree_test.cpp - Spanning-tree case-study tests ------------===//
//
// Part of fcsl-cpp. The paper's running example, end to end.
//
//===----------------------------------------------------------------------===//

#include "structures/SpanTree.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Sp = 2;
} // namespace

TEST(SpanTreeTest, TryMarkErasesToCas) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  GlobalState GS = spanOpenState(Case, figure2Graph(), {});
  View Pre = GS.viewFor(rootThread());

  auto First = Case.TryMark->step(Pre, {Val::ofPtr(Ptr(1))});
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ((*First)[0].Result, Val::ofBool(true));
  const View &Post = (*First)[0].Post;
  EXPECT_TRUE(nodeMarked(Post.joint(Sp), Ptr(1)));
  EXPECT_TRUE(Post.self(Sp).getPtrSet().count(Ptr(1)));
  EXPECT_TRUE(Case.Span->coherent(Post));

  // Second mark attempt fails like a CAS.
  auto Second = Case.TryMark->step(Post, {Val::ofPtr(Ptr(1))});
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ((*Second)[0].Result, Val::ofBool(false));
  EXPECT_EQ((*Second)[0].Post, Post);
}

TEST(SpanTreeTest, TryMarkOutsideGraphUnsafe) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  View Pre = spanOpenState(Case, figure2Graph(), {})
                 .viewFor(rootThread());
  EXPECT_FALSE(Case.TryMark->step(Pre, {Val::ofPtr(Ptr(42))}).has_value());
}

TEST(SpanTreeTest, NullifyRequiresOwnership) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  // Node 1 marked by the ENVIRONMENT: nullifying it is unsafe for us.
  View Pre = spanOpenState(Case, figure2Graph(), {Ptr(1)})
                 .viewFor(rootThread());
  EXPECT_FALSE(Case.NullifyL->step(Pre, {Val::ofPtr(Ptr(1))}).has_value());
  EXPECT_FALSE(
      Case.ReadChildL->step(Pre, {Val::ofPtr(Ptr(1))}).has_value());
}

TEST(SpanTreeTest, SpanOnNullReturnsFalse) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(Prog::call("span", {Expr::litPtr(Ptr::null())}),
                        spanOpenState(Case, figure2Graph(), {}), Opts);
  EXPECT_TRUE(R.complete());
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result, Val::ofBool(false));
}

TEST(SpanTreeTest, SpanRootBuildsSpanningTreeFigure2) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  Heap G = figure2Graph();
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(Main, spanRootState(Case, G), Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  EXPECT_FALSE(R.Terminals.empty());
  for (const Terminal &T : R.Terminals) {
    EXPECT_EQ(T.Result, Val::ofBool(true));
    const Heap &G2 = T.FinalView.self(Pv).getHeap();
    PtrSet All;
    for (const auto &Cell : G2)
      All.insert(Cell.first);
    EXPECT_EQ(All.size(), 5u);
    EXPECT_TRUE(isTreeIn(G2, Ptr(1), All)) << G2.toString();
    // Every node ended up marked.
    EXPECT_EQ(markedNodes(G2), All);
    // Edges were only removed, never added or redirected.
    for (const auto &Cell : G) {
      const NodeCell &Before = Cell.second.getNode();
      const NodeCell &After = G2.lookup(Cell.first).getNode();
      EXPECT_TRUE(After.Left == Before.Left || After.Left.isNull());
      EXPECT_TRUE(After.Right == Before.Right || After.Right.isNull());
    }
  }
}

TEST(SpanTreeTest, SpanRootOnRandomConnectedGraphs) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  Rng Random(2024);
  for (int Iter = 0; Iter < 3; ++Iter) {
    Heap G = randomGraph(4, Random, /*ConnectedFromRoot=*/true);
    ProgRef Main = makeSpanRootProg(Case, Ptr(1));
    EngineOptions Opts;
    Opts.Ambient = Case.PrivOnly;
    Opts.EnvInterference = false;
    Opts.Defs = &Case.Defs;
    RunResult R = explore(Main, spanRootState(Case, G), Opts);
    EXPECT_TRUE(R.complete()) << R.FailureNote;
    for (const Terminal &T : R.Terminals) {
      const Heap &G2 = T.FinalView.self(Pv).getHeap();
      PtrSet All;
      for (const auto &Cell : G2)
        All.insert(Cell.first);
      EXPECT_TRUE(isTreeIn(G2, Ptr(1), All))
          << "input: " << G.toString() << "\noutput: " << G2.toString();
    }
  }
}

TEST(SpanTreeTest, OpenWorldSpanMarksDisjointFromEnv) {
  // With env interference, whatever span marks is disjoint from env marks
  // and the subjective split tracks it exactly.
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sp);
  Heap G = buildGraph({GraphNode{Ptr(1), Ptr(2), Ptr::null()},
                       GraphNode{Ptr(2), Ptr::null(), Ptr::null()}});
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(Prog::call("span", {Expr::litPtr(Ptr(1))}),
                        spanOpenState(Case, G, {}), Opts);
  EXPECT_TRUE(R.complete()) << R.FailureNote;
  EXPECT_GT(R.EnvSteps, 0u);
  for (const Terminal &T : R.Terminals) {
    const PtrSet &Mine = T.FinalView.self(Sp).getPtrSet();
    const PtrSet &Theirs = T.FinalView.other(Sp).getPtrSet();
    for (Ptr P : Mine)
      EXPECT_FALSE(Theirs.count(P));
    EXPECT_EQ(markedNodes(T.FinalView.joint(Sp)).size(),
              Mine.size() + Theirs.size());
  }
}

TEST(SpanTreeTest, SessionPasses) {
  SessionReport Report = makeSpanTreeSession().run();
  EXPECT_TRUE(Report.AllPassed)
      << (Report.Failures.empty() ? "" : Report.Failures.front());
  // All five Table 1 columns are populated for the spanning tree.
  for (ObCategory C : {ObCategory::Libs, ObCategory::Conc, ObCategory::Acts,
                       ObCategory::Stab, ObCategory::Main})
    EXPECT_GT(Report.PerCategory[size_t(C)].Obligations, 0u)
        << obCategoryName(C);
}
