//===- tests/stability_auto_test.cpp - Stable-interior automation ----------===//
//
// Part of fcsl-cpp. The paper's future-work item "proof automation for
// stability-related facts": the stable interior of an assertion.
//
//===----------------------------------------------------------------------===//

#include "spec/Stability.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

constexpr Label Ct = 1;
const Ptr Cell = Ptr(1);

ConcurroidRef makeCounter(int64_t EnvCap) {
  auto Coh = [](const View &S) {
    if (!S.hasLabel(Ct))
      return false;
    const Val *V = S.joint(Ct).tryLookup(Cell);
    return V && V->isInt() &&
           V->getInt() == static_cast<int64_t>(S.self(Ct).getNat() +
                                               S.other(Ct).getNat());
  };
  auto C = makeConcurroid("Counter", {OwnedLabel{Ct, "ct",
                                                 PCMType::nat()}},
                          Coh);
  C->addTransition(Transition(
      "bump", TransitionKind::Internal,
      [EnvCap](const View &Pre) -> std::vector<View> {
        if (!Pre.hasLabel(Ct))
          return {};
        int64_t Cur = Pre.joint(Ct).lookup(Cell).getInt();
        if (Cur >= EnvCap)
          return {};
        View Post = Pre;
        Heap Joint = Pre.joint(Ct);
        Joint.update(Cell, Val::ofInt(Cur + 1));
        Post.setJoint(Ct, std::move(Joint));
        Post.setSelf(Ct, PCMVal::ofNat(Pre.self(Ct).getNat() + 1));
        return {Post};
      }));
  return C;
}

View counterView(uint64_t Mine, uint64_t Theirs) {
  View S;
  S.addLabel(Ct, LabelSlice{PCMVal::ofNat(Mine),
                            Heap::singleton(
                                Cell, Val::ofInt(static_cast<int64_t>(
                                          Mine + Theirs))),
                            PCMVal::ofNat(Theirs)});
  return S;
}

} // namespace

TEST(StableInteriorTest, ClosureGraphIsMemoized) {
  // The env-reachable closure is assertion-independent; two interiors
  // over the same (concurroid, seeds, bound) must share it. A session
  // discharging many obligations against one concurroid hits this path
  // on every obligation after the first.
  ConcurroidRef C = makeCounter(3);
  Assertion Mine("self >= 1",
                 [](const View &S) { return S.self(Ct).getNat() >= 1; });
  Assertion Joint2("joint <= 2", [](const View &S) {
    return S.joint(Ct).lookup(Cell).getInt() <= 2;
  });
  StableInteriorCacheStats Before = stableInteriorCacheStats();
  stableInterior(Mine, C, {counterView(1, 0)});
  StableInteriorCacheStats Mid = stableInteriorCacheStats();
  EXPECT_EQ(Mid.Misses, Before.Misses + 1);
  stableInterior(Joint2, C, {counterView(1, 0)});
  StableInteriorCacheStats After = stableInteriorCacheStats();
  EXPECT_EQ(After.Misses, Mid.Misses) << "closure graph rebuilt";
  EXPECT_EQ(After.Hits, Mid.Hits + 1);
  // A different seed set is a different closure.
  stableInterior(Mine, C, {counterView(2, 0)});
  EXPECT_EQ(stableInteriorCacheStats().Misses, After.Misses + 1);
}

TEST(StableInteriorTest, StableAssertionIsItsOwnInterior) {
  ConcurroidRef C = makeCounter(3);
  Assertion Mine("self >= 1", [](const View &S) {
    return S.self(Ct).getNat() >= 1;
  });
  Assertion Interior = stableInterior(Mine, C, {counterView(1, 0)});
  // The seed satisfies the interior, and the interior is stable.
  EXPECT_TRUE(Interior.holds(counterView(1, 0)));
  StabilityReport R = checkStability(Interior, *C, {counterView(1, 0)});
  EXPECT_TRUE(R.Stable) << R.CounterExample;
}

TEST(StableInteriorTest, UnstableAssertionShrinksToLastSafeStates) {
  ConcurroidRef C = makeCounter(3);
  // "the counter is at most 2" is destroyed once the env bumps past 2 —
  // every state with headroom for an env bump must leave the interior;
  // only the cap state (counter == 3) would satisfy "<= 2"... it does
  // not, so the interior is empty on the reachable closure.
  Assertion AtMost2("cell <= 2", [](const View &S) {
    return S.joint(Ct).lookup(Cell).getInt() <= 2;
  });
  Assertion Interior = stableInterior(AtMost2, C, {counterView(0, 0)});
  for (uint64_t Mine = 0; Mine <= 3; ++Mine)
    EXPECT_FALSE(Interior.holds(counterView(Mine, 0)));
}

TEST(StableInteriorTest, CapStateIsStable) {
  ConcurroidRef C = makeCounter(2);
  // At the interference cap, "cell == 2" cannot be destroyed.
  Assertion Exactly2("cell == 2", [](const View &S) {
    return S.joint(Ct).lookup(Cell).getInt() == 2;
  });
  Assertion Interior = stableInterior(
      Exactly2, C, {counterView(0, 0), counterView(0, 2)});
  EXPECT_TRUE(Interior.holds(counterView(0, 2)));
  EXPECT_FALSE(Interior.holds(counterView(0, 0)));
  StabilityReport R =
      checkStability(Interior, *C, {counterView(0, 2)});
  EXPECT_TRUE(R.Stable) << R.CounterExample;
}

TEST(StableInteriorTest, InteriorImpliesOriginal) {
  ConcurroidRef C = makeCounter(3);
  Assertion Mixed("self == 1 or cell == 0", [](const View &S) {
    return S.self(Ct).getNat() == 1 ||
           S.joint(Ct).lookup(Cell).getInt() == 0;
  });
  std::vector<View> Seeds = {counterView(0, 0), counterView(1, 0),
                             counterView(1, 2)};
  Assertion Interior = stableInterior(Mixed, C, Seeds);
  // Soundness: interior => original, on every closure state we can name.
  for (const View &S : Seeds)
    if (Interior.holds(S))
      EXPECT_TRUE(Mixed.holds(S));
  // "self == 1" states stay; "cell == 0"-only states are unstable.
  EXPECT_TRUE(Interior.holds(counterView(1, 0)));
  EXPECT_FALSE(Interior.holds(counterView(0, 0)));
}
