//===- tests/integration_test.cpp - Cross-module integration sweeps --------===//
//
// Part of fcsl-cpp. Deeper end-to-end coverage across modules: binder
// semantics of the embedded language, stale-CAS scenarios, publication
// protocol misuse, and seed-parameterized open-world spanning sweeps.
//
//===----------------------------------------------------------------------===//

#include "structures/FlatCombiner.h"
#include "structures/PairSnapshot.h"
#include "structures/SpanTree.h"
#include "structures/TreiberStack.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
constexpr Label Pv = 1;
constexpr Label Sec = 2;
} // namespace

//===----------------------------------------------------------------------===//
// Embedded-language semantics.
//===----------------------------------------------------------------------===//

TEST(LanguageTest, BindShadowsOuterVariable) {
  TreiberCase Case = makeTreiberCase(Pv, Sec, 0);
  // x bound twice: the inner binding wins in the continuation.
  ProgRef P = Prog::bind(
      Prog::ret(Expr::litInt(1)), "x",
      Prog::bind(Prog::ret(Expr::litInt(2)), "x",
                 Prog::ret(Expr::var("x"))));
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(P, treiberState(Case, {}, 0, 0), Opts);
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result, Val::ofInt(2));
}

TEST(LanguageTest, CallIsByValue) {
  TreiberCase Case = makeTreiberCase(Pv, Sec, 0);
  // The callee's parameter is a copy: rebinding it does not leak out.
  Case.Defs.define("shadow",
                   FuncDef{{"x"},
                           Prog::bind(Prog::ret(Expr::litInt(99)), "x",
                                      Prog::ret(Expr::var("x")))});
  ProgRef P = Prog::bind(
      Prog::ret(Expr::litInt(7)), "x",
      Prog::bind(Prog::call("shadow", {Expr::var("x")}), "r",
                 Prog::ret(Expr::mkPair(Expr::var("x"),
                                        Expr::var("r")))));
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(P, treiberState(Case, {}, 0, 0), Opts);
  ASSERT_EQ(R.Terminals.size(), 1u);
  EXPECT_EQ(R.Terminals[0].Result,
            Val::pair(Val::ofInt(7), Val::ofInt(99)));
}

TEST(LanguageTest, ParPairsResultsInOrder) {
  TreiberCase Case = makeTreiberCase(Pv, Sec, 0);
  ProgRef P = Prog::par(Prog::ret(Expr::litInt(1)),
                        Prog::ret(Expr::litInt(2)));
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(P, treiberState(Case, {}, 0, 0), Opts);
  ASSERT_EQ(R.Terminals.size(), 1u);
  // Left child's value is first, right child's second.
  EXPECT_EQ(R.Terminals[0].Result,
            Val::pair(Val::ofInt(1), Val::ofInt(2)));
}

//===----------------------------------------------------------------------===//
// Stale-CAS and protocol-misuse scenarios.
//===----------------------------------------------------------------------===//

TEST(StaleCasTest, PopWithOutdatedHeadFailsCleanly) {
  // Read the head, let another pop commit first, then try_pop with the
  // stale pointer: the CAS must fail and leave the state untouched.
  TreiberCase Case = makeTreiberCase(Pv, Sec, 0);
  GlobalState GS = treiberState(Case, {7, 5}, 0, 0);
  View S0 = GS.viewFor(rootThread());
  Ptr StaleHead = S0.joint(Sec).lookup(Case.Sentinel).getPtr();

  // A first pop succeeds (same thread, modeling an interleaved winner).
  auto First = Case.TryPop->step(S0, {Val::ofPtr(StaleHead)});
  ASSERT_TRUE(First.has_value());
  const View &S1 = (*First)[0].Post;

  // The stale retry observes the new head and fails.
  auto Retry = Case.TryPop->step(S1, {Val::ofPtr(StaleHead)});
  ASSERT_TRUE(Retry.has_value());
  EXPECT_EQ((*Retry)[0].Result.first(), Val::ofBool(false));
  EXPECT_EQ((*Retry)[0].Post, S1);
}

TEST(ProtocolMisuseTest, DoublePublishIsUnsafe) {
  FlatCombinerCase Case = makeFlatCombinerCase(Pv, 0);
  View S0 = flatCombinerState(Case, 1).viewFor(rootThread());
  auto P1 = Case.Publish->step(
      S0, {Val::ofPtr(Case.Slot1), Val::ofInt(FcPush), Val::ofInt(1)});
  ASSERT_TRUE(P1.has_value());
  // Publishing into a non-idle slot violates the protocol.
  EXPECT_FALSE(Case.Publish
                   ->step((*P1)[0].Post,
                          {Val::ofPtr(Case.Slot1), Val::ofInt(FcPush),
                           Val::ofInt(2)})
                   .has_value());
}

TEST(ProtocolMisuseTest, PublishingToForeignSlotIsUnsafe) {
  FlatCombinerCase Case = makeFlatCombinerCase(Pv, 0);
  View S0 = flatCombinerState(Case, 1).viewFor(rootThread());
  EXPECT_FALSE(Case.Publish
                   ->step(S0, {Val::ofPtr(Case.Slot2), Val::ofInt(FcPush),
                               Val::ofInt(1)})
                   .has_value());
}

TEST(ProtocolMisuseTest, SnapshotVersionsNeverRegress) {
  // Drive the snapshot through a random action soup and confirm the
  // version monotonicity invariant end to end.
  PairSnapCase Case = makePairSnapCase(Pv, /*EnvHistCap=*/3);
  EngineOptions Opts;
  Opts.Ambient = Case.C;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  ProgRef P = Prog::seq(
      Prog::act(Case.WriteX, {Expr::litInt(1)}),
      Prog::seq(Prog::act(Case.WriteY, {Expr::litInt(2)}),
                Prog::call("readPair", {})));
  RunResult R = explore(P, pairSnapState(Case), Opts);
  ASSERT_TRUE(R.complete()) << R.FailureNote;
  for (const Terminal &T : R.Terminals) {
    const Val &CellX = T.FinalView.joint(Pv).lookup(Case.CellX);
    const Val &CellY = T.FinalView.joint(Pv).lookup(Case.CellY);
    EXPECT_GE(CellX.second().getInt(), 1);
    EXPECT_GE(CellY.second().getInt(), 1);
  }
}

//===----------------------------------------------------------------------===//
// Seed-parameterized open-world spanning sweeps.
//===----------------------------------------------------------------------===//

class OpenWorldSpanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OpenWorldSpanTest, SpanTpHoldsOnRandomGraphs) {
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sec);
  Rng Random(GetParam());
  Heap G = randomGraph(3, Random, /*ConnectedFromRoot=*/false);

  Spec S;
  S.Name = "span_tp_sweep";
  S.C = Case.Open;
  Ptr X(1);
  S.Pre = Assertion("x in graph", [X](const View &V) {
    return V.joint(Sec).contains(X);
  });
  S.PostName = "Figure 4 postcondition";
  S.Post = [&Case, X](const Val &R, const View &I, const View &F) {
    return spanTpPost(Case, X, R, I, F);
  };
  ProgRef Main = Prog::call("span", {Expr::litPtr(X)});
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  VerifyResult R = verifyTriple(
      Main, S, {VerifyInstance{spanOpenState(Case, G, {}), {}}}, Opts);
  EXPECT_TRUE(R.Holds) << R.FailureNote << "\ngraph: " << G.toString();
  EXPECT_GT(R.TerminalsChecked, 0u);
}

TEST_P(OpenWorldSpanTest, SimulatedOpenWorldRunsSatisfySpanTp) {
  // The same spec, sampled on a larger graph where exploration would be
  // costly: interference included.
  SpanTreeCase Case = makeSpanTreeCase(Pv, Sec);
  Rng Random(GetParam() * 31);
  Heap G = randomGraph(6, Random, /*ConnectedFromRoot=*/false);
  EngineOptions Opts;
  Opts.Ambient = Case.Open;
  Opts.EnvInterference = true;
  Opts.Defs = &Case.Defs;
  GlobalState Initial = spanOpenState(Case, G, {});
  View I = Initial.viewFor(rootThread());
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    SimResult Sim = simulate(Prog::call("span", {Expr::litPtr(Ptr(1))}),
                             Initial, Opts, Seed);
    ASSERT_TRUE(Sim.Safe) << Sim.FailureNote;
    if (!Sim.Terminated)
      continue; // Interference may starve the run; that is fine.
    EXPECT_TRUE(spanTpPost(Case, Ptr(1), Sim.Result, I, Sim.FinalView))
        << "seed " << Seed << " graph " << G.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpenWorldSpanTest,
                         ::testing::Values(101u, 202u, 303u, 404u));
