//===- tests/histories_test.cpp - Time-stamped history tests ---------------===//
//
// Part of fcsl-cpp.
//
//===----------------------------------------------------------------------===//

#include "pcm/Histories.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {
HistEntry entry(int64_t From, int64_t To) {
  return HistEntry{Val::ofInt(From), Val::ofInt(To)};
}
} // namespace

TEST(HistoryTest, AddLookupLast) {
  History H;
  EXPECT_TRUE(H.isEmpty());
  EXPECT_EQ(H.lastStamp(), 0u);
  H.add(1, entry(0, 1));
  H.add(3, entry(2, 3));
  EXPECT_EQ(H.size(), 2u);
  EXPECT_TRUE(H.contains(3));
  EXPECT_FALSE(H.contains(2));
  EXPECT_EQ(H.lastStamp(), 3u);
  ASSERT_NE(H.tryLookup(1), nullptr);
  EXPECT_EQ(H.tryLookup(1)->After, Val::ofInt(1));
}

TEST(HistoryTest, JoinDisjointness) {
  History A, B;
  A.add(1, entry(0, 1));
  B.add(2, entry(1, 2));
  std::optional<History> AB = History::join(A, B);
  ASSERT_TRUE(AB.has_value());
  EXPECT_EQ(AB->size(), 2u);
  // Overlapping stamps are undefined.
  EXPECT_FALSE(History::join(A, A).has_value());
}

TEST(HistoryTest, ContinuityAccepts) {
  History H;
  H.add(1, entry(0, 5));
  H.add(2, entry(5, 7));
  H.add(3, entry(7, 7));
  EXPECT_TRUE(H.isContinuous());
  EXPECT_TRUE(History().isContinuous());
}

TEST(HistoryTest, ContinuityRejectsGapsAndMismatches) {
  History Gap;
  Gap.add(1, entry(0, 1));
  Gap.add(3, entry(1, 2));
  EXPECT_FALSE(Gap.isContinuous());

  History Mismatch;
  Mismatch.add(1, entry(0, 1));
  Mismatch.add(2, entry(9, 2)); // Before != previous After.
  EXPECT_FALSE(Mismatch.isContinuous());

  History NotFromOne;
  NotFromOne.add(2, entry(0, 1));
  EXPECT_FALSE(NotFromOne.isContinuous());
}

TEST(HistoryTest, CompareAndToString) {
  History A, B;
  A.add(1, entry(0, 1));
  B.add(1, entry(0, 2));
  EXPECT_NE(A.compare(B), 0);
  EXPECT_EQ(A.compare(A), 0);
  EXPECT_NE(A.toString().find("0 ~> 1"), std::string::npos);
}
