//===- tests/service_test.cpp - Verification service daemon tests ----------===//
//
// Part of fcsl-cpp.
//
// Pins the verification service (src/service/, DESIGN.md §15): a daemon-
// served session report is bit-identical to a direct in-process run (the
// wire codec, the scheduler, and the mode plumbing add nothing and lose
// nothing); a warm obligation store answers whole sessions without the
// engine ever running; concurrent clients are both served; malformed and
// unknown frames are rejected loudly without killing the daemon; and a
// graceful Shutdown drains in-flight sessions before acking. Part of the
// ASan stage of scripts/verify.sh.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Server.h"

#include "cache/Store.h"
#include "prog/Engine.h"
#include "spec/Session.h"
#include "structures/Suite.h"
#include "support/Codec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace fcsl;
using namespace fcsl::dist;
using namespace fcsl::service;

namespace {

/// Wire mode bytes (SubmitSessionMsg): 0 = daemon default.
constexpr uint8_t PorOffB = 1, PorDynamicB = 3;
constexpr uint8_t SymOffB = 1, SymOnB = 2;
constexpr uint8_t CacheOffB = 1, CacheRwB = 2;

/// Zeroes every wall-clock field so two runs of the same session compare
/// bit-identically (timings are the one nondeterministic ingredient).
SessionReport scrubTimings(SessionReport R) {
  for (auto &C : R.PerCategory)
    C.ElapsedMs = 0.0;
  R.TotalMs = 0.0;
  R.Cache.ReplayedUs = 0;
  return R;
}

std::vector<uint8_t> encodedScrubbed(const SessionReport &R) {
  Encoder E;
  encode(E, scrubTimings(R));
  return E.take();
}

/// A scratch directory holding the daemon socket and the obligation
/// store; process mode globals are reset around every test.
class ServiceTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/fcsl-service-test-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Dir = Template;
    cache::setCacheDir(Dir);
    resetModes(cache::CacheMode::Off);
  }

  void TearDown() override {
    Daemon.reset();
    resetModes(cache::CacheMode::Off);
    cache::setCacheDir("");
    cache::resetActiveStore();
    std::remove((Dir + "/obligations.fcslcache").c_str());
    std::remove(socketPath().c_str());
    ::rmdir(Dir.c_str());
  }

  void resetModes(cache::CacheMode M) {
    setDefaultPorMode(PorMode::Off);
    setDefaultSymmetryMode(SymMode::Off);
    cache::setDefaultCacheMode(M);
    cache::resetActiveStore();
  }

  std::string socketPath() const { return Dir + "/daemon.sock"; }

  void startDaemon(unsigned Workers = 2) {
    ServerOptions Opts;
    Opts.SocketPath = socketPath();
    Opts.Workers = Workers;
    Daemon = std::make_unique<Server>(Opts);
    ASSERT_TRUE(Daemon->start());
  }

  std::string Dir;
  std::unique_ptr<Server> Daemon;
};

/// A raw framed connection for protocol-abuse tests (the ServiceClient
/// API cannot emit malformed traffic).
int rawConnect(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Length-prefixes an arbitrary payload (well-framed, possibly garbage).
std::vector<uint8_t> rawFrame(const std::vector<uint8_t> &Payload) {
  Encoder E;
  E.u32(static_cast<uint32_t>(Payload.size()));
  E.raw(Payload);
  return E.take();
}

} // namespace

TEST_F(ServiceTest, DaemonReportsAreBitIdenticalToDirectRuns) {
  // The acceptance bar: every Table-1 session served by the daemon under
  // --por=dynamic --symmetry=on must encode bit-identically to a direct
  // in-process run under the same flags (timings scrubbed — they are the
  // one field wall-clock owns). Cache off on both sides so the counters
  // section is exercised as all-zeroes rather than skipped.
  std::vector<CaseEntry> Cases = allCaseStudies();
  ASSERT_EQ(Cases.size(), 11u);

  std::vector<SessionReport> Direct;
  setDefaultPorMode(PorMode::Dynamic);
  setDefaultSymmetryMode(SymMode::On);
  for (const CaseEntry &Case : Cases)
    Direct.push_back(Case.MakeSession().run());
  resetModes(cache::CacheMode::Off);

  startDaemon();
  ServiceClient Client(socketPath());
  ASSERT_TRUE(Client.ok()) << Client.error();
  for (size_t I = 0; I != Cases.size(); ++I) {
    std::optional<ReportMsg> R =
        Client.submit(Cases[I].Name, PorDynamicB, SymOnB, CacheOffB);
    ASSERT_TRUE(R) << Client.error();
    ASSERT_TRUE(R->Ok) << R->Error;
    EXPECT_FALSE(R->ServedFromCache);
    EXPECT_EQ(encodedScrubbed(R->Report), encodedScrubbed(Direct[I]))
        << Cases[I].Name;
    EXPECT_EQ(renderSessionReport(scrubTimings(R->Report)),
              renderSessionReport(scrubTimings(Direct[I])))
        << Cases[I].Name;
  }
  EXPECT_EQ(Daemon->stats().SessionsRun.load(), 11u);
  EXPECT_EQ(Daemon->stats().ServedFromCache.load(), 0u);
}

TEST_F(ServiceTest, WarmStoreServesWithoutTheEngine) {
  // Cold submit populates the store through the engine; the identical
  // resubmit must be answered wholly from the in-memory index — the
  // daemon-side counters prove the engine never ran again.
  resetModes(cache::CacheMode::Rw);
  startDaemon();
  ServiceClient Client(socketPath());
  ASSERT_TRUE(Client.ok()) << Client.error();

  std::optional<ReportMsg> Cold =
      Client.submit("CAS-lock", PorOffB, SymOffB, CacheRwB);
  ASSERT_TRUE(Cold && Cold->Ok) << Client.error();
  EXPECT_FALSE(Cold->ServedFromCache);
  EXPECT_EQ(Cold->Report.Cache.Stores, Cold->Report.totalObligations());

  // An engine-backed cache-off request flips the process default cache
  // mode to Off; the warm path must keep serving from the resolved store
  // regardless of what mode the last worker installed.
  std::optional<ReportMsg> Uncached =
      Client.submit("CG increment", PorOffB, SymOffB, CacheOffB);
  ASSERT_TRUE(Uncached && Uncached->Ok) << Client.error();
  EXPECT_FALSE(Uncached->ServedFromCache);

  std::vector<ProgressMsg> Streamed;
  std::optional<ReportMsg> Warm = Client.submit(
      "CAS-lock", PorOffB, SymOffB, CacheRwB, 0,
      [&Streamed](const ProgressMsg &P) { Streamed.push_back(P); });
  ASSERT_TRUE(Warm && Warm->Ok) << Client.error();
  EXPECT_TRUE(Warm->ServedFromCache);
  EXPECT_EQ(Warm->Report.Cache.Hits, Warm->Report.totalObligations());
  EXPECT_EQ(Warm->Report.Cache.Misses, 0u);
  EXPECT_TRUE(Warm->Report.AllPassed);

  // Replay streams one FromCache progress frame per obligation.
  ASSERT_EQ(Streamed.size(), Warm->Report.totalObligations());
  for (const ProgressMsg &P : Streamed) {
    EXPECT_TRUE(P.FromCache);
    EXPECT_TRUE(P.Passed);
    EXPECT_EQ(P.Total, Warm->Report.totalObligations());
  }

  // Same session, same verdicts, same per-category counts; only the
  // cache section differs (stores vs hits), so compare it separately.
  SessionReport A = scrubTimings(Cold->Report);
  SessionReport B = scrubTimings(Warm->Report);
  A.Cache = cache::CacheStats{};
  B.Cache = cache::CacheStats{};
  Encoder EA, EB;
  encode(EA, A);
  encode(EB, B);
  EXPECT_EQ(EA.take(), EB.take());

  EXPECT_EQ(Daemon->stats().SessionsRun.load(), 2u);
  EXPECT_EQ(Daemon->stats().ServedFromCache.load(), 1u);

  std::optional<CacheStatsMsg> Stats = Client.stats();
  ASSERT_TRUE(Stats);
  EXPECT_EQ(Stats->SessionsRun, 2u);
  EXPECT_EQ(Stats->ServedFromCache, 1u);
  EXPECT_EQ(Stats->ObligationsReplayed, Warm->Report.totalObligations());
  EXPECT_GT(Stats->StoreRecords, 0u);
}

TEST_F(ServiceTest, ConcurrentClientsAreBothServed) {
  startDaemon(/*Workers=*/2);
  std::atomic<int> Failures{0};
  auto Submit = [&](const char *Name) {
    ServiceClient Client(socketPath());
    if (!Client.ok()) {
      ++Failures;
      return;
    }
    std::optional<ReportMsg> R =
        Client.submit(Name, PorOffB, SymOffB, CacheOffB);
    if (!R || !R->Ok || !R->Report.AllPassed ||
        R->Report.Program.empty())
      ++Failures;
  };
  std::thread A(Submit, "CAS-lock");
  std::thread B(Submit, "CG increment");
  A.join();
  B.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Daemon->stats().RequestsServed.load(), 2u);
}

TEST_F(ServiceTest, MalformedAndUnknownFramesAreRejectedLoudly) {
  startDaemon();
  int Fd = rawConnect(socketPath());
  ASSERT_GE(Fd, 0);
  FdChannel Ch(Fd);
  ASSERT_TRUE(clientHandshake(Ch));

  auto ExpectReject = [&](const char *Needle) {
    std::vector<uint8_t> Payload;
    ASSERT_EQ(Ch.recv(Payload, 5000), RecvStatus::Frame);
    std::optional<WireMsg> M = decodeFrame(Payload);
    ASSERT_TRUE(M);
    ASSERT_EQ(M->Type, MsgType::Report);
    EXPECT_FALSE(M->Rep.Ok);
    EXPECT_NE(M->Rep.Error.find(Needle), std::string::npos) << M->Rep.Error;
  };

  // Bad codec magic: rejected as malformed, connection survives.
  ASSERT_TRUE(Ch.send(rawFrame({'J', 'U', 'N', 'K', 0, 0, 0, 0})));
  ExpectReject("malformed");

  // Well-framed unknown tag: rejected as unknown, connection survives.
  Encoder Unknown;
  encodeHeader(Unknown);
  Unknown.u8(static_cast<uint8_t>(MaxKnownMsgTag) + 1);
  ASSERT_TRUE(Ch.send(rawFrame(Unknown.take())));
  ExpectReject("unknown message type");

  // Known tag, truncated body: rejected as malformed, connection survives.
  std::vector<uint8_t> Truncated = frameSubmitSession(SubmitSessionMsg{});
  Truncated.erase(Truncated.begin(), Truncated.begin() + 4); // strip length
  Truncated.pop_back();
  ASSERT_TRUE(Ch.send(rawFrame(Truncated)));
  ExpectReject("malformed");

  // Unknown session name and an out-of-range mode byte: loud rejects.
  SubmitSessionMsg Bogus;
  Bogus.Session = "No such structure";
  ASSERT_TRUE(Ch.send(frameSubmitSession(Bogus)));
  ExpectReject("unknown session");
  SubmitSessionMsg BadMode;
  BadMode.Session = "CAS-lock";
  BadMode.Por = 77;
  ASSERT_TRUE(Ch.send(frameSubmitSession(BadMode)));
  ExpectReject("invalid mode");

  // The abused connection still does real work...
  SubmitSessionMsg Good;
  Good.Session = "CAS-lock";
  Good.Por = PorOffB;
  Good.Symmetry = SymOffB;
  Good.Cache = CacheOffB;
  ASSERT_TRUE(Ch.send(frameSubmitSession(Good)));
  std::vector<uint8_t> Payload;
  ASSERT_EQ(Ch.recv(Payload, 600000), RecvStatus::Frame);
  std::optional<WireMsg> M = decodeFrame(Payload);
  ASSERT_TRUE(M && M->Type == MsgType::Report);
  EXPECT_TRUE(M->Rep.Ok) << M->Rep.Error;
  EXPECT_TRUE(M->Rep.Report.AllPassed);
  Ch.close();

  // ...and an implausible length prefix kills only its own connection:
  // the daemon keeps serving fresh ones.
  int Fd2 = rawConnect(socketPath());
  ASSERT_GE(Fd2, 0);
  FdChannel Poison(Fd2);
  ASSERT_TRUE(clientHandshake(Poison));
  Encoder Huge;
  Huge.u32(0xFFFFFFFFu);
  ASSERT_TRUE(Poison.send(Huge.take()));
  Poison.close();

  ServiceClient Fresh(socketPath());
  ASSERT_TRUE(Fresh.ok()) << Fresh.error();
  std::optional<CacheStatsMsg> Stats = Fresh.stats();
  ASSERT_TRUE(Stats);
  EXPECT_GE(Stats->MalformedFrames, 2u);
  EXPECT_GE(Stats->UnknownFrames, 1u);
  EXPECT_GE(Stats->Rejected, 5u);
}

TEST_F(ServiceTest, ShutdownDrainsInFlightSessions) {
  startDaemon();
  std::atomic<bool> Started{false};

  std::thread Submitter([&] {
    ServiceClient Client(socketPath());
    if (!Client.ok()) {
      ADD_FAILURE() << Client.error();
      Started.store(true); // unblock the main thread's wait.
      return;
    }
    std::optional<ReportMsg> R = Client.submit(
        "Ticketed lock", PorOffB, SymOffB, CacheOffB, 0,
        [&Started](const ProgressMsg &) { Started.store(true); });
    // The drain guarantee: a session the daemon accepted before the
    // Shutdown frame still completes and reports.
    EXPECT_TRUE(R && R->Ok) << (R ? R->Error : Client.error());
    if (R && R->Ok) {
      EXPECT_TRUE(R->Report.AllPassed);
    }
    Started.store(true);
  });

  // Wait until the session is demonstrably in flight (first progress
  // frame observed), then ask for shutdown from a second client. The
  // Shutdown ack may only arrive after the drain completes.
  while (!Started.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ServiceClient Stopper(socketPath());
  ASSERT_TRUE(Stopper.ok()) << Stopper.error();
  EXPECT_TRUE(Stopper.shutdown());
  Submitter.join();

  Daemon->wait();
  EXPECT_EQ(Daemon->stats().SessionsRun.load(), 1u);

  // The listener is gone: new connections are refused.
  EXPECT_LT(rawConnect(socketPath()), 0);
}
