//===- tests/codec_test.cpp - Binary state codec tests ---------------------===//
//
// Part of fcsl-cpp.
//
// Pins the deterministic binary codec (support/Codec.h): decode(encode(x))
// == x for every state constructor, encoding is byte-deterministic, the
// versioned header rejects foreign buffers, truncated or corrupted streams
// fail soft (no crashes, failed() latches), and the ProgTable enumeration
// is identical for structurally identical programs.
//
//===----------------------------------------------------------------------===//

#include "dist/Wire.h"
#include "support/Codec.h"

#include <gtest/gtest.h>

using namespace fcsl;

namespace {

/// Round-trips \p V through a fresh buffer with the standard header.
template <typename T, typename EncodeFn, typename DecodeFn>
T roundTrip(const T &V, EncodeFn Enc, DecodeFn Dec) {
  Encoder E;
  encodeHeader(E);
  Enc(E, V);
  Decoder D(E.buffer());
  EXPECT_TRUE(decodeHeader(D));
  T Out = Dec(D);
  EXPECT_FALSE(D.failed());
  EXPECT_TRUE(D.atEnd());
  return Out;
}

Val valRT(const Val &V) {
  return roundTrip(
      V, [](Encoder &E, const Val &X) { encode(E, X); }, decodeVal);
}

PCMVal pcmRT(const PCMVal &V) {
  return roundTrip(
      V, [](Encoder &E, const PCMVal &X) { encode(E, X); }, decodePCMVal);
}

TEST(CodecTest, HeaderRoundTripAndRejection) {
  Encoder E;
  encodeHeader(E);
  {
    Decoder D(E.buffer());
    EXPECT_TRUE(decodeHeader(D));
    EXPECT_TRUE(D.atEnd());
  }
  // Corrupt the magic.
  std::vector<uint8_t> BadMagic = E.buffer();
  BadMagic[0] ^= 0xff;
  {
    Decoder D(BadMagic);
    EXPECT_FALSE(decodeHeader(D));
    EXPECT_TRUE(D.failed());
  }
  // Future version.
  Encoder E2;
  E2.u8('F');
  E2.u8('C');
  E2.u8('S');
  E2.u8('L');
  E2.u32(CodecVersion + 1);
  {
    Decoder D(E2.buffer());
    EXPECT_FALSE(decodeHeader(D));
  }
  // Empty buffer.
  {
    std::vector<uint8_t> Empty;
    Decoder D(Empty);
    EXPECT_FALSE(decodeHeader(D));
  }
}

TEST(CodecTest, EncodingIsDeterministic) {
  Heap H;
  H.insert(Ptr(3), Val::ofInt(3));
  H.insert(Ptr(1), Val::ofInt(1));
  Encoder A, B;
  encode(A, H);
  encode(B, H);
  EXPECT_EQ(A.buffer(), B.buffer());
}

TEST(CodecTest, EveryValKindRoundTrips) {
  for (const Val &V :
       {Val::unit(), Val::ofInt(0), Val::ofInt(-123456789), Val::ofInt(42),
        Val::ofBool(false), Val::ofBool(true), Val::ofPtr(Ptr::null()),
        Val::ofPtr(Ptr(77)), Val::node(false, Ptr(1), Ptr::null()),
        Val::node(true, Ptr(2), Ptr(3)),
        Val::pair(Val::ofInt(1), Val::ofBool(true)),
        Val::pair(Val::pair(Val::unit(), Val::ofInt(2)), Val::ofPtr(Ptr(4)))})
    EXPECT_EQ(valRT(V), V) << V.toString();
}

TEST(CodecTest, HeapAndHistoryRoundTrip) {
  Heap H;
  H.insert(Ptr(1), Val::ofInt(10));
  H.insert(Ptr(2), Val::node(true, Ptr(1), Ptr::null()));
  H.insert(Ptr(9), Val::pair(Val::ofBool(false), Val::unit()));
  EXPECT_EQ(roundTrip(
                H, [](Encoder &E, const Heap &X) { encode(E, X); },
                decodeHeap),
            H);
  EXPECT_EQ(roundTrip(
                Heap(), [](Encoder &E, const Heap &X) { encode(E, X); },
                decodeHeap),
            Heap());

  History Hist;
  Hist.add(1, HistEntry{Val::unit(), Val::ofInt(1)});
  Hist.add(2, HistEntry{Val::ofInt(1), Val::ofInt(2)});
  EXPECT_EQ(roundTrip(
                Hist, [](Encoder &E, const History &X) { encode(E, X); },
                decodeHistory),
            Hist);
}

TEST(CodecTest, EveryPCMValKindRoundTrips) {
  Heap H = Heap::singleton(Ptr(5), Val::ofInt(5));
  History Hist;
  Hist.add(1, HistEntry{Val::unit(), Val::ofInt(7)});
  for (const PCMVal &V :
       {PCMVal::ofNat(0), PCMVal::ofNat(31337), PCMVal::mutexOwn(),
        PCMVal::mutexFree(), PCMVal::ofPtrSet({}),
        PCMVal::ofPtrSet({Ptr(1), Ptr(2), Ptr(3)}),
        PCMVal::singletonPtr(Ptr(8)), PCMVal::ofHeap(H),
        PCMVal::ofHeap(Heap()), PCMVal::ofHist(Hist),
        PCMVal::ofHist(History()),
        PCMVal::makePair(PCMVal::ofNat(2), PCMVal::mutexOwn()),
        PCMVal::makePair(PCMVal::ofHeap(H),
                         PCMVal::makePair(PCMVal::ofNat(1),
                                          PCMVal::ofHist(Hist))),
        PCMVal::liftDef(PCMVal::ofNat(4)),
        PCMVal::liftUndef(PCMType::nat()),
        PCMVal::liftUndef(PCMType::heap())})
    EXPECT_EQ(pcmRT(V), V) << V.toString();
}

TEST(CodecTest, PCMTypeRoundTripsIncludingAbsent) {
  for (const PCMTypeRef &T :
       {PCMTypeRef(), PCMType::nat(), PCMType::mutex(), PCMType::ptrSet(),
        PCMType::heap(), PCMType::hist(),
        PCMType::pairOf(PCMType::nat(), PCMType::hist()),
        PCMType::lifted(PCMType::heap())}) {
    Encoder E;
    encode(E, T);
    Decoder D(E.buffer());
    PCMTypeRef Out = decodePCMType(D);
    EXPECT_FALSE(D.failed());
    if (!T)
      EXPECT_EQ(Out, nullptr);
    else {
      ASSERT_NE(Out, nullptr);
      EXPECT_EQ(Out->kind(), T->kind());
    }
  }
}

TEST(CodecTest, ViewRoundTrips) {
  View V;
  V.addLabel(1, LabelSlice{PCMVal::ofHeap(Heap::singleton(Ptr(1),
                                                          Val::ofInt(1))),
                           Heap(), PCMVal::ofHeap(Heap())});
  V.addLabel(4, LabelSlice{PCMVal::ofNat(2),
                           Heap::singleton(Ptr(9), Val::ofBool(true)),
                           PCMVal::ofNat(5)});
  View Out = roundTrip(
      V, [](Encoder &E, const View &X) { encode(E, X); }, decodeView);
  EXPECT_EQ(Out, V);
}

GlobalState nontrivialState() {
  GlobalState GS;
  Heap Joint;
  Joint.insert(Ptr(10), Val::ofPtr(Ptr(11)));
  Joint.insert(Ptr(11), Val::node(false, Ptr::null(), Ptr::null()));
  GS.addLabel(1, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.setSelf(1, rootThread(),
             PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(1))));
  History Hist;
  Hist.add(1, HistEntry{Val::unit(), Val::ofInt(2)});
  GS.addLabel(2, PCMType::hist(), Joint, PCMVal::ofHist(History()),
              /*EnvClosed=*/true);
  GS.setSelf(2, rootThread(), PCMVal::ofHist(Hist));
  GS.setSelf(2, leftChild(rootThread()), PCMVal::ofHist(History()));
  GS.addLabel(3, PCMType::pairOf(PCMType::mutex(), PCMType::nat()), Heap(),
              PCMVal::makePair(PCMVal::mutexFree(), PCMVal::ofNat(0)),
              /*EnvClosed=*/false);
  return GS;
}

TEST(CodecTest, GlobalStateRoundTrips) {
  GlobalState GS = nontrivialState();
  GlobalState Out = roundTrip(
      GS, [](Encoder &E, const GlobalState &X) { encode(E, X); },
      decodeGlobalState);
  EXPECT_EQ(Out, GS);
  EXPECT_EQ(Out.isEnvClosed(2), true);
  EXPECT_EQ(Out.isEnvClosed(1), false);
  EXPECT_EQ(Out.selfOf(2, rootThread()), GS.selfOf(2, rootThread()));
}

TEST(CodecTest, ProgTableIsDeterministic) {
  auto Build = [](DefTable &Defs) {
    Defs.define("loop",
                FuncDef{{"x"}, Prog::ifThenElse(Expr::var("x"),
                                                Prog::call("loop",
                                                           {Expr::var("x")}),
                                                Prog::retUnit())});
    return Prog::bind(Prog::retUnit(), "a",
                      Prog::par(Prog::call("loop", {Expr::litBool(false)}),
                                Prog::retUnit()));
  };
  DefTable DefsA, DefsB;
  ProgRef A = Build(DefsA);
  ProgRef B = Build(DefsB);
  ProgTable TA(A.get(), &DefsA);
  ProgTable TB(B.get(), &DefsB);
  ASSERT_EQ(TA.size(), TB.size());
  EXPECT_GE(TA.size(), 6u); // bind, ret, par, call, if, ...
  for (uint32_t I = 0; I != TA.size(); ++I) {
    // Same pre-order position => same node kind and same structural
    // fingerprint in both enumerations.
    EXPECT_EQ(TA.progAt(I)->kind(), TB.progAt(I)->kind());
    EXPECT_EQ(TA.progAt(I)->fingerprint(), TB.progAt(I)->fingerprint());
  }
  EXPECT_EQ(TA.indexOf(A.get()), 0u);
}

TEST(CodecTest, FrontierConfigRoundTrips) {
  ProgRef Root = Prog::bind(Prog::retUnit(), "a", Prog::retUnit());
  ProgTable T(Root.get());

  FrontierConfig C;
  C.GS = nontrivialState();
  FrontierThread Th;
  Th.Id = rootThread();
  Th.Waiting = false;
  FrontierFrame F;
  F.Kind = 1;
  F.Node = T.indexOf(Root.get());
  F.Rest = ProgTable::NoProg;
  F.Var = "a";
  F.Env = VarEnv{{"a", Val::ofInt(3)}, {"b", Val::pair(Val::unit(),
                                                       Val::ofBool(true))}};
  Th.Frames.push_back(F);
  C.Threads.push_back(Th);
  FrontierThread Done;
  Done.Id = leftChild(rootThread());
  Done.Waiting = true;
  Done.Done = Val::ofInt(9);
  C.Threads.push_back(Done);

  FrontierConfig Out = roundTrip(
      C, [](Encoder &E, const FrontierConfig &X) { encode(E, X); },
      decodeFrontierConfig);
  EXPECT_EQ(Out, C);
}

TEST(CodecTest, TruncatedStreamsFailSoft) {
  Encoder E;
  encodeHeader(E);
  encode(E, nontrivialState());
  const std::vector<uint8_t> &Full = E.buffer();
  // Every strict prefix must either decode to failed() or (for the full
  // buffer only) succeed — never crash. Step through a spread of cuts.
  for (size_t Cut = 0; Cut < Full.size(); Cut += 7) {
    Decoder D(Full.data(), Cut);
    if (!decodeHeader(D))
      continue;
    (void)decodeGlobalState(D);
    EXPECT_TRUE(D.failed()) << "prefix of " << Cut << " bytes decoded";
  }
  // The untruncated buffer decodes cleanly.
  Decoder D(Full);
  EXPECT_TRUE(decodeHeader(D));
  (void)decodeGlobalState(D);
  EXPECT_FALSE(D.failed());
}

TEST(CodecTest, MalformedPayloadsFailSoft) {
  // An unknown Val kind tag.
  {
    Encoder E;
    E.u8(250);
    Decoder D(E.buffer());
    (void)decodeVal(D);
    EXPECT_TRUE(D.failed());
  }
  // A heap with a duplicate pointer.
  {
    Encoder E;
    E.u32(2);
    encode(E, Ptr(1));
    encode(E, Val::unit());
    encode(E, Ptr(1));
    encode(E, Val::unit());
    Decoder D(E.buffer());
    (void)decodeHeap(D);
    EXPECT_TRUE(D.failed());
  }
  // A history with a zero timestamp.
  {
    Encoder E;
    E.u32(1);
    E.u64(0);
    encode(E, Val::unit());
    encode(E, Val::unit());
    Decoder D(E.buffer());
    (void)decodeHistory(D);
    EXPECT_TRUE(D.failed());
  }
}

FrontierConfig sampleConfig(int64_t Seed) {
  FrontierConfig C;
  C.GS = nontrivialState();
  FrontierThread Th;
  Th.Id = rootThread();
  FrontierFrame F;
  F.Kind = 1;
  F.Node = 0;
  F.Rest = ProgTable::NoProg;
  F.Var = "a";
  F.Env = VarEnv{{"a", Val::ofInt(Seed)},
                 {"b", Val::pair(Val::unit(), Val::ofBool(true))}};
  Th.Frames.push_back(F);
  C.Threads.push_back(Th);
  FrontierSleep S;
  S.T = rootThread();
  S.ActNode = 2;
  C.Sleep.push_back(S);
  C.EnvCloseMask = 5;
  return C;
}

TEST(CodecTest, NodeDictRoundTripsAndDedups) {
  NodeDictEncoder Enc;
  NodeDictDecoder Dec;
  FrontierConfig A = sampleConfig(1);
  FrontierConfig B = sampleConfig(2); // shares almost all nodes with A

  Encoder DefsA, RefsA;
  Enc.encodeConfig(DefsA, RefsA, A);
  ASSERT_FALSE(DefsA.buffer().empty());
  ASSERT_TRUE(Dec.feedDefs(DefsA.buffer().data(), DefsA.buffer().size()));
  Decoder DA(RefsA.buffer());
  FrontierConfig OutA = Dec.decodeConfig(DA);
  EXPECT_FALSE(DA.failed());
  EXPECT_TRUE(DA.atEnd());
  EXPECT_EQ(OutA, A);

  // The second config ships only its genuinely new nodes as definitions.
  Encoder DefsB, RefsB;
  Enc.encodeConfig(DefsB, RefsB, B);
  EXPECT_LT(DefsB.buffer().size(), DefsA.buffer().size());
  ASSERT_TRUE(Dec.feedDefs(DefsB.buffer().data(), DefsB.buffer().size()));
  Decoder DB(RefsB.buffer());
  EXPECT_EQ(Dec.decodeConfig(DB), B);
  EXPECT_FALSE(DB.failed());
  EXPECT_EQ(Enc.size(), Dec.size());

  // Re-sending an already-interned config adds no definitions at all, and
  // its reference encoding is smaller than the standalone encoding.
  Encoder DefsC, RefsC;
  Enc.encodeConfig(DefsC, RefsC, A);
  EXPECT_TRUE(DefsC.buffer().empty());
  Decoder DC(RefsC.buffer());
  EXPECT_EQ(Dec.decodeConfig(DC), A);
  EXPECT_FALSE(DC.failed());
  Encoder Plain;
  encode(Plain, A);
  EXPECT_LT(RefsC.buffer().size(), Plain.buffer().size());
}

TEST(CodecTest, NodeDictDefsFailSoft) {
  FrontierConfig A = sampleConfig(3);
  Encoder Defs, Refs;
  NodeDictEncoder Enc;
  Enc.encodeConfig(Defs, Refs, A);
  const std::vector<uint8_t> &Full = Defs.buffer();
  ASSERT_FALSE(Full.empty());
  // A strict prefix of the definition stream either fails outright
  // (poisoning the dictionary) or, when it happens to end on a definition
  // boundary, leaves later references dangling — the config never decodes.
  for (size_t Cut = 0; Cut < Full.size(); Cut += 4) {
    NodeDictDecoder Dec;
    bool FedOk = Dec.feedDefs(Full.data(), Cut);
    if (!FedOk) {
      EXPECT_TRUE(Dec.corrupt());
      // Poisoned for good: even the valid full stream is refused now.
      EXPECT_FALSE(Dec.feedDefs(Full.data(), Full.size()));
    }
    Decoder D(Refs.buffer());
    (void)Dec.decodeConfig(D);
    EXPECT_TRUE(D.failed()) << "defs prefix of " << Cut << " bytes decoded";
  }
  // Foreign bytes: an unknown definition tag corrupts the dictionary.
  std::vector<uint8_t> Foreign = Full;
  Foreign[0] ^= 0xff;
  NodeDictDecoder Dec;
  EXPECT_FALSE(Dec.feedDefs(Foreign.data(), Foreign.size()));
  EXPECT_TRUE(Dec.corrupt());
}

TEST(CodecTest, NodeDictRefsFailSoft) {
  FrontierConfig A = sampleConfig(4);
  Encoder Defs, Refs;
  NodeDictEncoder Enc;
  Enc.encodeConfig(Defs, Refs, A);
  NodeDictDecoder Dec;
  ASSERT_TRUE(Dec.feedDefs(Defs.buffer().data(), Defs.buffer().size()));
  const std::vector<uint8_t> &Full = Refs.buffer();
  for (size_t Cut = 0; Cut < Full.size(); Cut += 3) {
    Decoder D(Full.data(), Cut);
    (void)Dec.decodeConfig(D);
    EXPECT_TRUE(D.failed()) << "refs prefix of " << Cut << " bytes decoded";
  }
  // An out-of-range dictionary reference is rejected.
  Encoder Bad;
  Bad.vu(1);                // one label
  Bad.vu(1);                // label id
  Bad.vu(Dec.size() + 100); // type reference beyond the dictionary
  Decoder DBad(Bad.buffer());
  (void)Dec.decodeConfig(DBad);
  EXPECT_TRUE(DBad.failed());
  // Malformed reference streams do not poison the dictionary: the intact
  // stream still decodes afterwards.
  Decoder DOk(Full);
  EXPECT_EQ(Dec.decodeConfig(DOk), A);
  EXPECT_FALSE(DOk.failed());
}

cache::CacheRecord sampleRecord(uint64_t Content) {
  cache::CacheRecord R;
  R.Key.Content = Content;
  R.Key.Flags = 0xfeedbeef;
  R.Passed = false;
  R.Checks = 42;
  R.Counters.Configs = 100;
  R.Counters.ActionSteps = 60;
  R.Counters.EnvSteps = 40;
  R.Counters.Terminals = 7;
  R.Counters.DedupHits = 12;
  R.ElapsedUs = 1234;
  R.Note = "stability counterexample at seed 3";
  return R;
}

TEST(CodecTest, CacheRecordRoundTrips) {
  cache::CacheRecord R = sampleRecord(0xabcdef);
  Encoder E;
  cache::encode(E, R);
  Decoder D(E.buffer());
  cache::CacheRecord Out = cache::decodeCacheRecord(D);
  EXPECT_FALSE(D.failed());
  EXPECT_TRUE(D.atEnd());
  EXPECT_EQ(Out, R);

  // Default-constructed (a passing verdict with no note) round-trips too.
  cache::CacheRecord Zero;
  Encoder E2;
  cache::encode(E2, Zero);
  Decoder D2(E2.buffer());
  EXPECT_EQ(cache::decodeCacheRecord(D2), Zero);
  EXPECT_FALSE(D2.failed());
}

TEST(CodecTest, CacheRecordFailsSoft) {
  cache::CacheRecord R = sampleRecord(0x1111);
  Encoder E;
  cache::encode(E, R);
  const std::vector<uint8_t> &Full = E.buffer();
  // Every strict prefix latches failed(), never crashes.
  for (size_t Cut = 0; Cut < Full.size(); Cut += 3) {
    Decoder D(Full.data(), Cut);
    (void)cache::decodeCacheRecord(D);
    EXPECT_TRUE(D.failed()) << "prefix of " << Cut << " bytes decoded";
  }
  // A Passed byte that is neither 0 nor 1 is malformed.
  std::vector<uint8_t> Bad = Full;
  Bad[16] = 7; // Key.Content + Key.Flags precede the Passed byte.
  Decoder D(Bad);
  (void)cache::decodeCacheRecord(D);
  EXPECT_TRUE(D.failed());
}

TEST(CodecTest, CacheDeltaFrameRoundTrips) {
  dist::CacheDeltaMsg M;
  M.ShardId = 3;
  M.Records.push_back(sampleRecord(0x1001));
  M.Records.push_back(cache::CacheRecord{});
  M.Records.push_back(sampleRecord(0x1002));

  std::vector<uint8_t> Frame = dist::frameCacheDelta(M);
  // Strip the u32 length prefix; the payload must announce its own length.
  ASSERT_GT(Frame.size(), 4u);
  uint32_t Len = 0;
  for (int I = 0; I != 4; ++I)
    Len |= static_cast<uint32_t>(Frame[I]) << (8 * I);
  ASSERT_EQ(Frame.size() - 4, Len);
  std::vector<uint8_t> Payload(Frame.begin() + 4, Frame.end());

  std::optional<dist::WireMsg> Out = dist::decodeFrame(Payload);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(Out->Type, dist::MsgType::CacheDelta);
  EXPECT_EQ(Out->Delta, M);
}

TEST(CodecTest, CacheDeltaFrameFailsSoft) {
  dist::CacheDeltaMsg M;
  M.ShardId = 1;
  M.Records.push_back(sampleRecord(0x2002));
  std::vector<uint8_t> Frame = dist::frameCacheDelta(M);
  std::vector<uint8_t> Payload(Frame.begin() + 4, Frame.end());

  // Truncated payloads never decode.
  for (size_t Cut = 0; Cut < Payload.size(); Cut += 5) {
    std::vector<uint8_t> Prefix(Payload.begin(), Payload.begin() + Cut);
    EXPECT_FALSE(dist::decodeFrame(Prefix).has_value())
        << "prefix of " << Cut << " bytes decoded";
  }

  // A delta from a different cache-record format version is dropped whole.
  // Layout: codec header (8 bytes), tag (1), shard id (4), then the u32
  // record version — flip its low byte at offset 13.
  std::vector<uint8_t> Foreign = Payload;
  ASSERT_GT(Foreign.size(), 13u);
  Foreign[13] ^= 0x01;
  EXPECT_FALSE(dist::decodeFrame(Foreign).has_value());

  // Trailing garbage after the last record is malformed.
  std::vector<uint8_t> Trailing = Payload;
  Trailing.push_back(0x00);
  EXPECT_FALSE(dist::decodeFrame(Trailing).has_value());
}

} // namespace
